package core

import (
	"errors"
	"testing"
	"testing/quick"
)

func buildForFreeze(t *testing.T, v Variant) (*Filter, []struct{ k, a1, a2 uint64 }) {
	t.Helper()
	f := mustFilter(t, Params{Variant: v, NumAttrs: 2, Capacity: 8192, Seed: 91})
	var rows []struct{ k, a1, a2 uint64 }
	for k := uint64(0); k < 1200; k++ {
		n := uint64(1)
		if k%9 == 0 {
			n = 12 // chains for the chained variant
		}
		if v == VariantPlain {
			n = 1
		}
		for d := uint64(0); d < n; d++ {
			r := struct{ k, a1, a2 uint64 }{k, d + 1<<30, k % 5}
			if err := f.Insert(r.k, []uint64{r.a1, r.a2}); err != nil {
				t.Fatal(err)
			}
			rows = append(rows, r)
		}
	}
	return f, rows
}

func TestFreezeQueryEquivalence(t *testing.T) {
	for _, v := range []Variant{VariantPlain, VariantChained} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			f, rows := buildForFreeze(t, v)
			fr, err := f.Freeze()
			if err != nil {
				t.Fatal(err)
			}
			// Every stored row is found.
			for _, r := range rows {
				if !fr.Query(r.k, And(Eq(0, r.a1), Eq(1, r.a2))) {
					t.Fatalf("frozen false negative: %+v", r)
				}
			}
			// Bitwise-identical answers on a probe battery mixing present
			// keys, absent keys, and absent attributes.
			for i := uint64(0); i < 8000; i++ {
				key := i % 2400 // half absent
				pred := And(Eq(0, i%16+1<<30), Eq(1, i%7))
				if f.Query(key, pred) != fr.Query(key, pred) {
					t.Fatalf("divergence at key %d pred %v", key, pred)
				}
				if f.QueryKey(key) != fr.QueryKey(key) {
					t.Fatalf("key-only divergence at %d", key)
				}
			}
			if fr.Rows() != f.Rows() || fr.OccupiedEntries() != f.OccupiedEntries() {
				t.Fatal("counters lost in freeze")
			}
		})
	}
}

func TestFreezeSizeMatchesFormula(t *testing.T) {
	f, _ := buildForFreeze(t, VariantChained)
	fr, err := f.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(f.Capacity()) * int64(f.p.KeyBits+f.p.NumAttrs*f.p.AttrBits)
	if fr.SizeBits() != want {
		t.Fatalf("frozen bits = %d, want %d", fr.SizeBits(), want)
	}
	if fr.SizeBits() != f.SizeBits() {
		t.Fatalf("frozen size %d differs from analytic accounting %d", fr.SizeBits(), f.SizeBits())
	}
}

func TestFreezeUnsupportedVariants(t *testing.T) {
	for _, v := range []Variant{VariantBloom, VariantMixed} {
		f := mustFilter(t, Params{Variant: v, Capacity: 64})
		if _, err := f.Freeze(); !errors.Is(err, ErrUnsupported) {
			t.Fatalf("%s: Freeze err = %v, want ErrUnsupported", v, err)
		}
	}
}

func TestFrozenMarshalRoundTrip(t *testing.T) {
	f, rows := buildForFreeze(t, VariantChained)
	fr, err := f.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	data, err := fr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var fr2 Frozen
	if err := fr2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[:500] {
		if !fr2.Query(r.k, And(Eq(0, r.a1), Eq(1, r.a2))) {
			t.Fatalf("round-trip false negative: %+v", r)
		}
	}
	if fr2.SizeBits() != fr.SizeBits() || fr2.Rows() != fr.Rows() {
		t.Fatal("round trip lost metadata")
	}
	// Corruption rejected.
	var bad Frozen
	if err := bad.UnmarshalBinary(data[:40]); err == nil {
		t.Fatal("truncated frozen accepted")
	}
	flip := append([]byte(nil), data...)
	flip[0] ^= 0xff
	if err := bad.UnmarshalBinary(flip); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := bad.UnmarshalBinary(append(data, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestThaw(t *testing.T) {
	f, rows := buildForFreeze(t, VariantChained)
	fr, err := f.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	g, err := fr.Thaw()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !g.Query(r.k, And(Eq(0, r.a1), Eq(1, r.a2))) {
			t.Fatalf("thawed false negative: %+v", r)
		}
	}
	// The thawed filter is mutable again.
	if err := g.Insert(999999, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if !g.Query(999999, And(Eq(0, 1), Eq(1, 2))) {
		t.Fatal("insert after thaw lost")
	}
	// And re-freezes to the same bits.
	fr2, err := g.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if fr2.SizeBits() != fr.SizeBits() {
		t.Fatal("refreeze changed size")
	}
}

func TestFreezeRejectsTombstones(t *testing.T) {
	f := buildViewWorkload(t, VariantChained)
	view, err := f.PredicateFilter(And(Eq(0, 3)))
	if err != nil {
		t.Fatal(err)
	}
	_ = view
	// The view's inner filter carries tombstones; the public path cannot
	// reach it, but Freeze on a filter with flags set must refuse. Simulate
	// by setting a flag directly.
	f.flags[0] |= flagTombstone
	if _, err := f.Freeze(); err == nil {
		t.Fatal("freeze with tombstones accepted")
	}
}

func TestFrozenEquivalenceProperty(t *testing.T) {
	prop := func(raw []uint16, seed uint16) bool {
		f, err := New(Params{Variant: VariantChained, Capacity: 4096, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		for _, r := range raw {
			if err := f.Insert(uint64(r%100), []uint64{uint64(r) + 1<<20}); err != nil {
				return false
			}
		}
		fr, err := f.Freeze()
		if err != nil {
			return false
		}
		for i := uint64(0); i < 300; i++ {
			pred := And(Eq(0, i+1<<20))
			if f.Query(i%150, pred) != fr.Query(i%150, pred) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
