package core

import "testing"

// FuzzSIMDEquivalence differential-fuzzes the vectorized batch probe
// pipeline against the scalar point path. The batch entry points run the
// internal/simd kernels (AVX2/NEON where detected); Query, QueryKey and
// queryChained never do — so any kernel that diverges from the scalar
// reference semantics (hash derivation, word compare, per-lane hit masks)
// shows up as a batch/point mismatch. The tape drives table shape too:
// BucketSize 4 exercises the packed word-mirror kernels, 2 and 8 the
// non-packed fallback tiles, and direct tombstoning exercises the
// resolver's flagged-slot handling against entryMatches.
func FuzzSIMDEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(0), uint8(1))
	f.Add([]byte{0xff, 0x80, 0x01, 0x10, 0x20, 0x30}, uint8(1), uint8(0))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7}, uint8(2), uint8(4))
	f.Add([]byte{0, 0, 1, 1, 2, 2, 3, 3, 4, 4}, uint8(3), uint8(7))
	f.Add([]byte{}, uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, tape []byte, variantSel, shapeSel uint8) {
		variant := []Variant{VariantPlain, VariantChained, VariantBloom, VariantMixed}[variantSel%4]
		bsz := []int{4, 2, 8}[shapeSel%3]
		keyBits := []int{16, 8, 12}[int(shapeSel/3)%3]
		params := Params{
			Variant: variant, NumAttrs: 1, Capacity: 1024, BloomBits: 24,
			BucketSize: bsz, KeyBits: keyBits, Seed: 11,
		}
		if variant == VariantChained {
			params.MaxDupes = 1
		}
		filt, err := New(params)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+1 < len(tape); i += 2 {
			k := uint64(tape[i]) % 128
			a := uint64(tape[i+1]) % 16
			if err := filt.Insert(k, []uint64{a}); err != nil &&
				err != ErrFull && err != ErrChainLimit {
				t.Fatal(err)
			}
		}
		// Tombstone some occupied slots directly (what a predicate view's
		// erase leaves behind): still a fingerprint hit at the word level,
		// never a predicate match.
		for i := 0; i+1 < len(tape); i += 2 {
			if tape[i]%5 != 0 {
				continue
			}
			idx := int(tape[i+1]) % len(filt.fps)
			if filt.fps[idx] != 0 {
				filt.flags[idx] |= flagTombstone
			}
		}
		// Probe inserted and absent keys, enough of them that the batch
		// crosses a tile boundary.
		keys := make([]uint64, 0, 320)
		for k := uint64(0); k < 160; k++ {
			keys = append(keys, k, k*0x9e3779b97f4a7c15)
		}
		var av uint64
		if len(tape) > 0 {
			av = uint64(tape[0]) % 16
		}
		for _, pred := range []Predicate{nil, And(Eq(0, av))} {
			got := filt.QueryBatchInto(nil, keys, pred)
			for i, k := range keys {
				if want := filt.Query(k, pred); got[i] != want {
					t.Fatalf("%s b=%d kb=%d: QueryBatch(key %#x) = %v, point Query = %v",
						variant, bsz, keyBits, k, got[i], want)
				}
			}
			// Scatter form, reversed order, holes left untouched.
			idxs := make([]int32, 0, len(keys))
			for i := len(keys) - 1; i >= 0; i-- {
				if i%3 != 0 {
					idxs = append(idxs, int32(i))
				}
			}
			out := make([]bool, len(keys))
			filt.QueryBatchIdx(out, keys, idxs, pred)
			for _, i := range idxs {
				if want := filt.Query(keys[i], pred); out[i] != want {
					t.Fatalf("%s b=%d: QueryBatchIdx(key %#x) = %v, point Query = %v",
						variant, bsz, keys[i], out[i], want)
				}
			}
		}
		gotC := filt.ContainsBatchInto(nil, keys)
		for i, k := range keys {
			if want := filt.QueryKey(k); gotC[i] != want {
				t.Fatalf("%s b=%d kb=%d: ContainsBatch(key %#x) = %v, QueryKey = %v",
					variant, bsz, keyBits, k, gotC[i], want)
			}
		}
		if err := filt.CheckWordMirror(); err != nil {
			t.Fatal(err)
		}
	})
}
