package core

import (
	"testing"
)

func buildForMarshal(t *testing.T, v Variant) *Filter {
	t.Helper()
	f := mustFilter(t, Params{Variant: v, NumAttrs: 2, Capacity: 4096, BloomBits: 24, Seed: 61})
	for k := uint64(0); k < 800; k++ {
		n := uint64(1)
		if k%7 == 0 {
			n = 6 // trigger chains / conversions
		}
		for d := uint64(0); d < n; d++ {
			err := f.Insert(k, []uint64{d, k % 5})
			if err == ErrFull && v == VariantPlain {
				// Plain cuckoo filters legitimately fail under heavy
				// duplicates (Figure 4); skip the row, the round-trip
				// comparison below only needs a populated filter.
				continue
			}
			if err != nil {
				t.Fatalf("%s insert: %v", v, err)
			}
		}
	}
	return f
}

func TestMarshalRoundTripAllVariants(t *testing.T) {
	for _, v := range allVariants() {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			f := buildForMarshal(t, v)
			data, err := f.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			var g Filter
			if err := g.UnmarshalBinary(data); err != nil {
				t.Fatal(err)
			}
			if g.OccupiedEntries() != f.OccupiedEntries() || g.Rows() != f.Rows() {
				t.Fatalf("counters lost: occ %d→%d rows %d→%d",
					f.OccupiedEntries(), g.OccupiedEntries(), f.Rows(), g.Rows())
			}
			// Buckets/Capacity/TargetLoad are construction inputs, not
			// state; normalize them before comparing.
			fp, gp := f.Params(), g.Params()
			fp.Buckets, gp.Buckets = 0, 0
			fp.Capacity, gp.Capacity = 0, 0
			fp.TargetLoad, gp.TargetLoad = 0, 0
			if fp != gp {
				t.Fatalf("params lost:\n%+v\n%+v", fp, gp)
			}
			if g.NumBuckets() != f.NumBuckets() {
				t.Fatalf("bucket count lost: %d → %d", f.NumBuckets(), g.NumBuckets())
			}
			// Decoded filter must answer identically on a probe battery.
			for k := uint64(0); k < 800; k++ {
				for d := uint64(0); d < 3; d++ {
					pred := And(Eq(0, d), Eq(1, k%5))
					if f.Query(k, pred) != g.Query(k, pred) {
						t.Fatalf("query divergence after round trip: key %d attr %d", k, d)
					}
				}
				if f.QueryKey(k+1<<40) != g.QueryKey(k+1<<40) {
					t.Fatalf("key-only divergence after round trip: %d", k)
				}
			}
		})
	}
}

func TestMarshalMixedGroupSharingPreserved(t *testing.T) {
	f := buildForMarshal(t, VariantMixed)
	if f.Conversions() == 0 {
		t.Fatal("workload produced no conversions; test is vacuous")
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Filter
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	// Distinct group sketches must be shared after decoding: count the
	// arena references.
	distinct := map[int32]bool{}
	perGroupRefs := 0
	for _, ref := range g.sketch {
		if ref != sketchNone {
			distinct[ref] = true
			perGroupRefs++
		}
	}
	if len(distinct) == 0 {
		t.Fatal("groups lost in round trip")
	}
	if perGroupRefs < len(distinct)*2 {
		t.Fatalf("group sharing lost: %d refs over %d groups (want ≥ d refs per group)",
			perGroupRefs, len(distinct))
	}
	// Inserting into the decoded filter continues to work.
	if err := g.Insert(7, []uint64{12345, 2}); err != nil {
		t.Fatalf("insert after decode: %v", err)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	f := buildForMarshal(t, VariantChained)
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Filter
	if err := g.UnmarshalBinary(nil); err == nil {
		t.Fatal("nil buffer accepted")
	}
	if err := g.UnmarshalBinary(data[:7]); err == nil {
		t.Fatal("truncated header accepted")
	}
	if err := g.UnmarshalBinary(data[:len(data)-3]); err == nil {
		t.Fatal("truncated body accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if err := g.UnmarshalBinary(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	withTrailing := append(append([]byte(nil), data...), 0x00)
	if err := g.UnmarshalBinary(withTrailing); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestMarshalDeterministic(t *testing.T) {
	f := buildForMarshal(t, VariantBloom)
	a, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("MarshalBinary not deterministic")
	}
}

func TestDecodedFilterKeepsInserting(t *testing.T) {
	// A stored filter must be usable as a live filter after loading:
	// inserts, chains and queries keep working (pre-built + updatable).
	f := buildForMarshal(t, VariantChained)
	data, _ := f.MarshalBinary()
	var g Filter
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for k := uint64(5000); k < 5200; k++ {
		if err := g.Insert(k, []uint64{k % 3, k % 5}); err != nil {
			t.Fatalf("insert after decode: %v", err)
		}
	}
	for k := uint64(5000); k < 5200; k++ {
		if !g.Query(k, And(Eq(0, k%3), Eq(1, k%5))) {
			t.Fatalf("false negative on post-decode insert %d", k)
		}
	}
}
