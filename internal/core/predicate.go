package core

import "fmt"

// Cond is a single-attribute condition: the attribute at index Attr must
// equal one of Values. A single value expresses an equality predicate; a
// value list expresses an in-list, the encoding the paper uses for binned
// range predicates (§9.1).
type Cond struct {
	Attr   int
	Values []uint64
}

// Eq returns an equality condition attr = v.
func Eq(attr int, v uint64) Cond { return Cond{Attr: attr, Values: []uint64{v}} }

// In returns an in-list condition attr ∈ vs.
func In(attr int, vs ...uint64) Cond { return Cond{Attr: attr, Values: vs} }

// Predicate is a conjunction of per-attribute conditions. A nil or empty
// Predicate matches every row (a key-only query).
type Predicate []Cond

// And returns a predicate that is the conjunction of conds.
func And(conds ...Cond) Predicate { return Predicate(conds) }

// Validate checks that every condition references a valid attribute index
// and has at least one value.
func (p Predicate) Validate(numAttrs int) error {
	for _, c := range p {
		if c.Attr < 0 || c.Attr >= numAttrs {
			return fmt.Errorf("ccf: predicate attribute %d outside [0,%d)", c.Attr, numAttrs)
		}
		if len(c.Values) == 0 {
			return fmt.Errorf("ccf: predicate on attribute %d has no values", c.Attr)
		}
	}
	return nil
}

// matchVector reports whether the fingerprint vector at attrs satisfies p
// under the filter's attribute fingerprinting.
func (f *Filter) matchVector(entryIdx int, p Predicate) bool {
	base := entryIdx * f.nattr
	for _, c := range p {
		got := f.attrs[base+c.Attr]
		ok := false
		for _, v := range c.Values {
			if got == f.attrFingerprint(c.Attr, v) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// matchBloomEntry reports whether the per-entry Bloom sketch satisfies p.
// The Bloom variant inserts raw (attribute, value) pairs (§5.2).
func (f *Filter) matchBloomEntry(entryIdx int, p Predicate) bool {
	bf := f.sketchAt(f.sketch[entryIdx])
	if bf == nil {
		return len(p) == 0
	}
	for _, c := range p {
		ok := false
		for _, v := range c.Values {
			if bf.Contains(f.bloomElemRaw(c.Attr, v)) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// matchGroup reports whether a converted group's Bloom filter satisfies p.
// The group sketch is resolved by arena reference (§6.1's shared filter);
// conversion inserts (attribute, attribute-fingerprint) pairs, adding the
// second collision layer the paper describes.
func (f *Filter) matchGroup(ref int32, p Predicate) bool {
	bf := f.sketchAt(ref)
	for _, c := range p {
		ok := false
		for _, v := range c.Values {
			if bf.Contains(f.bloomElemFp(c.Attr, f.attrFingerprint(c.Attr, v))) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
