package core

import (
	"testing"
	"testing/quick"
)

func TestMixedConversionTriggers(t *testing.T) {
	f := mustFilter(t, Params{Variant: VariantMixed, Capacity: 1024, Seed: 31})
	d := f.Params().MaxDupes
	// d distinct vectors fit as vector entries; the d+1-th converts.
	for i := 0; i <= d; i++ {
		if err := f.Insert(5, []uint64{uint64(i) + 100}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if f.Conversions() != 1 {
		t.Fatalf("Conversions = %d, want 1", f.Conversions())
	}
	// Occupancy stays at d entries for this key (Table 1: min{A, d}).
	if got := f.CountFingerprint(5); got != d {
		t.Fatalf("entries for key = %d, want d = %d", got, d)
	}
	// All d+1 vectors remain queryable.
	for i := 0; i <= d; i++ {
		if !f.Query(5, And(Eq(0, uint64(i)+100))) {
			t.Fatalf("false negative for vector %d after conversion", i)
		}
	}
}

func TestMixedConversionNeverFails(t *testing.T) {
	// §6.1: "This conversion operation has the advantage that it can never
	// fail." Hundreds of duplicates of one key must all be absorbed.
	f := mustFilter(t, Params{Variant: VariantMixed, Capacity: 1024, Seed: 32})
	for i := uint64(0); i < 500; i++ {
		if err := f.Insert(8, []uint64{i + 1000}); err != nil {
			t.Fatalf("insert dup %d: %v", i, err)
		}
	}
	d := f.Params().MaxDupes
	if got := f.CountFingerprint(8); got != d {
		t.Fatalf("occupied entries for key = %d, want exactly d = %d", got, d)
	}
	for i := uint64(0); i < 500; i++ {
		if !f.Query(8, And(Eq(0, i+1000))) {
			t.Fatalf("false negative for dup %d", i)
		}
	}
}

func TestMixedPostConversionInsertsGoToBloom(t *testing.T) {
	f := mustFilter(t, Params{Variant: VariantMixed, Capacity: 1024, Seed: 33})
	d := f.Params().MaxDupes
	for i := 0; i <= d; i++ {
		if err := f.Insert(2, []uint64{uint64(i) * 7}); err != nil {
			t.Fatal(err)
		}
	}
	before := f.OccupiedEntries()
	for i := d + 1; i < d+20; i++ {
		if err := f.Insert(2, []uint64{uint64(i) * 7}); err != nil {
			t.Fatal(err)
		}
	}
	if f.OccupiedEntries() != before {
		t.Fatalf("post-conversion inserts changed occupancy %d → %d", before, f.OccupiedEntries())
	}
	if f.Conversions() != 1 {
		t.Fatalf("Conversions = %d, want 1 (group reused)", f.Conversions())
	}
}

func TestMixedConversionParamsFormulae(t *testing.T) {
	p := Params{Variant: VariantMixed, KeyBits: 12, AttrBits: 8, NumAttrs: 2, MaxDupes: 3}
	if err := p.setDefaults(); err != nil {
		t.Fatal(err)
	}
	// s = |κ| + #α·|α| + 1 = 12 + 16 + 1 = 29.
	if got := p.EntryBits(); got != 29 {
		t.Fatalf("EntryBits = %d, want 29", got)
	}
	// totalBits = d·s − 2(|κ| + ⌈log₂ d⌉) = 87 − 2·14 = 59.
	if got := p.ConversionBloomBits(); got != 59 {
		t.Fatalf("ConversionBloomBits = %d, want 59", got)
	}
	// hashes ≈ 59 / ((d+1)·#α) · ln2 = 59/8·0.693 ≈ 5.
	if got := p.ConversionBloomHashes(); got != 5 {
		t.Fatalf("ConversionBloomHashes = %d, want 5", got)
	}
}

func TestMixedSeparateKeysIndependent(t *testing.T) {
	f := mustFilter(t, Params{Variant: VariantMixed, Capacity: 4096, Seed: 34})
	// Key 1 converts; key 2 stays a single vector entry.
	for i := uint64(0); i < 10; i++ {
		if err := f.Insert(1, []uint64{i + 50}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Insert(2, []uint64{5}); err != nil {
		t.Fatal(err)
	}
	if !f.Query(2, And(Eq(0, 5))) {
		t.Fatal("false negative on unconverted key")
	}
	if f.Query(2, And(Eq(0, 6))) && f.CountFingerprint(2) == 1 {
		t.Fatal("vector entry matched wrong small value")
	}
}

func TestMixedNoFalseNegativesProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		f, err := New(Params{Variant: VariantMixed, Capacity: 4096, Seed: 35})
		if err != nil {
			return false
		}
		type row struct{ k, a uint64 }
		rows := make([]row, 0, len(raw))
		for _, r := range raw {
			rows = append(rows, row{uint64(r % 50), uint64(r / 50)})
		}
		for _, r := range rows {
			if err := f.Insert(r.k, []uint64{r.a}); err != nil {
				return false
			}
		}
		for _, r := range rows {
			if !f.Query(r.k, And(Eq(0, r.a))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMixedKickCarriesGroupMembership(t *testing.T) {
	// Fill the table enough to force kicks after conversions happen; every
	// converted row must remain queryable (group pointer travels with the
	// kicked entry inside its pair).
	f := mustFilter(t, Params{Variant: VariantMixed, Buckets: 256, Seed: 36})
	type row struct{ k, a uint64 }
	var rows []row
	for k := uint64(0); k < 300; k++ {
		n := uint64(1)
		if k%5 == 0 {
			n = 8 // force conversions on every 5th key
		}
		for d := uint64(0); d < n; d++ {
			if err := f.Insert(k, []uint64{d + 10}); err != nil {
				goto check
			}
			rows = append(rows, row{k, d + 10})
		}
	}
check:
	for _, r := range rows {
		if !f.Query(r.k, And(Eq(0, r.a))) {
			t.Fatalf("false negative (%d,%d) after kicks with conversions", r.k, r.a)
		}
	}
}
