package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean not 0")
	}
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", m)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-element stddev not 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.1380899) > 1e-6 {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile not 0")
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Fatalf("interpolated median = %v, want 5", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated input")
	}
}

func TestMinMax(t *testing.T) {
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max not infinities")
	}
	if Min([]float64{3, -1, 2}) != -1 || Max([]float64{3, -1, 2}) != 3 {
		t.Fatal("min/max wrong")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("filter", "rf", "fpr")
	tb.AddRow("chained", 0.28, 0.061)
	tb.AddRow("cuckoo", 0.68, 0.0)
	s := tb.String()
	if !strings.Contains(s, "filter") || !strings.Contains(s, "chained") {
		t.Fatalf("table missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), s)
	}
	if !strings.Contains(s, "0.2800") {
		t.Fatalf("float not formatted:\n%s", s)
	}
}

func TestFormatFloat(t *testing.T) {
	if FormatFloat(3) != "3" {
		t.Fatalf("integer formatting: %q", FormatFloat(3))
	}
	if FormatFloat(0.25) != "0.2500" {
		t.Fatalf("decimal formatting: %q", FormatFloat(0.25))
	}
	if !strings.Contains(FormatFloat(1e-6), "e") {
		t.Fatalf("tiny value formatting: %q", FormatFloat(1e-6))
	}
}

func TestSeries(t *testing.T) {
	s := Series("fig", []float64{1, 2, 3}, []float64{0.1, 0.2, 0.3}, 10)
	if !strings.Contains(s, "fig") || !strings.Contains(s, "*") {
		t.Fatalf("series rendering broken:\n%s", s)
	}
	if got := Series("empty", nil, nil, 10); !strings.Contains(got, "no data") {
		t.Fatalf("empty series: %q", got)
	}
	if got := Series("mismatch", []float64{1}, nil, 10); !strings.Contains(got, "no data") {
		t.Fatalf("mismatched series: %q", got)
	}
}

func TestDownsample(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	ds := Downsample(xs, 10)
	if len(ds) != 10 {
		t.Fatalf("len = %d, want 10", len(ds))
	}
	if ds[0] != 0 || ds[9] != 99 {
		t.Fatalf("endpoints not preserved: %v", ds)
	}
	if got := Downsample(xs[:5], 10); len(got) != 5 {
		t.Fatalf("short input should pass through, got %d", len(got))
	}
}
