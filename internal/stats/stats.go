// Package stats provides the small numeric and text-rendering helpers the
// experiment harness uses to summarize runs and print paper-style tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Table accumulates rows of strings and renders them with aligned columns,
// in the style of the paper's printed tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with four significant decimals.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 0.001 {
		return fmt.Sprintf("%.4f", v)
	}
	return fmt.Sprintf("%.3e", v)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series renders an (x, y) series as a compact ASCII sparkline-style chart
// for figure output: one line per downsampled x with a bar proportional to y.
func Series(name string, xs, ys []float64, width int) string {
	if len(xs) == 0 || len(xs) != len(ys) {
		return name + ": (no data)\n"
	}
	if width <= 0 {
		width = 40
	}
	maxY := Max(ys)
	if maxY <= 0 {
		maxY = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", name)
	step := 1
	if len(xs) > 24 {
		step = len(xs) / 24
	}
	for i := 0; i < len(xs); i += step {
		bar := int(math.Round(ys[i] / maxY * float64(width)))
		if bar < 0 {
			bar = 0
		}
		fmt.Fprintf(&b, "  x=%-10s y=%-10s |%s\n",
			FormatFloat(xs[i]), FormatFloat(ys[i]), strings.Repeat("*", bar))
	}
	return b.String()
}

// Downsample returns at most n evenly spaced elements of xs, always
// including the first and last.
func Downsample(xs []float64, n int) []float64 {
	if n <= 0 || len(xs) <= n {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(xs) - 1) / (n - 1)
		out = append(out, xs[idx])
	}
	return out
}
