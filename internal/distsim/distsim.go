// Package distsim simulates the distributed join setting the paper
// motivates (§2–3, §10.3): tuples partitioned across workers must be
// shuffled over the network to join, and "for a distributed system, the
// reduction factor measures [what] proportion of tuples are sent over the
// network". Pre-built CCFs applied before the shuffle cut exactly that
// traffic.
//
// The simulator is deliberately simple — hash partitioning, per-worker
// queues, byte accounting — but exercises the real filters on the real
// row stream, so the measured traffic reduction is the CCF's actual
// filtering power, not a model.
package distsim

import (
	"errors"
	"fmt"

	"ccf/internal/hashing"
)

// Row is one tuple to shuffle: its join key and a payload size in bytes.
type Row struct {
	Key   uint32
	Bytes int
}

// KeyFilter decides whether a row's key survives the pre-shuffle filter.
type KeyFilter func(key uint32) bool

// Cluster models w workers exchanging rows by hash partitioning on the key.
type Cluster struct {
	workers int
	salt    uint64
}

// NewCluster returns a cluster of w ≥ 1 workers.
func NewCluster(w int, salt uint64) (*Cluster, error) {
	if w < 1 {
		return nil, errors.New("distsim: need at least one worker")
	}
	return &Cluster{workers: w, salt: salt}, nil
}

// Workers returns the cluster size.
func (c *Cluster) Workers() int { return c.workers }

// Home returns the worker that owns a key.
func (c *Cluster) Home(key uint32) int {
	return int(hashing.Key64(uint64(key), c.salt) % uint64(c.workers))
}

// ShuffleStats accounts one shuffle of a table.
type ShuffleStats struct {
	RowsIn       int   // rows offered by the scan
	RowsShuffled int   // rows surviving the filter and sent
	RowsLocal    int   // surviving rows already at their home worker
	BytesOnWire  int64 // payload bytes crossing the network
	PerWorkerIn  []int // rows received per worker (skew diagnostic)
}

// Shuffle sends every row passing filter to its home worker. origin maps a
// row index to the worker that scanned it; rows already home don't hit the
// network. A nil filter keeps every row.
func (c *Cluster) Shuffle(rows []Row, origin func(i int) int, filter KeyFilter) ShuffleStats {
	stats := ShuffleStats{PerWorkerIn: make([]int, c.workers)}
	for i, r := range rows {
		stats.RowsIn++
		if filter != nil && !filter(r.Key) {
			continue
		}
		stats.RowsShuffled++
		home := c.Home(r.Key)
		stats.PerWorkerIn[home]++
		from := 0
		if origin != nil {
			from = origin(i) % c.workers
		}
		if from == home {
			stats.RowsLocal++
			continue
		}
		stats.BytesOnWire += int64(r.Bytes)
	}
	return stats
}

// ReductionFactor returns shuffled/offered rows, the network analogue of
// Eq. 9.
func (s ShuffleStats) ReductionFactor() float64 {
	if s.RowsIn == 0 {
		return 1
	}
	return float64(s.RowsShuffled) / float64(s.RowsIn)
}

// MaxSkew returns the max/mean ratio of per-worker receive counts; 1.0 is
// perfectly balanced.
func (s ShuffleStats) MaxSkew() float64 {
	if len(s.PerWorkerIn) == 0 || s.RowsShuffled == 0 {
		return 1
	}
	max := 0
	for _, n := range s.PerWorkerIn {
		if n > max {
			max = n
		}
	}
	mean := float64(s.RowsShuffled) / float64(len(s.PerWorkerIn))
	return float64(max) / mean
}

// String summarizes the shuffle.
func (s ShuffleStats) String() string {
	return fmt.Sprintf("in=%d shuffled=%d (rf %.3f) local=%d wire=%dB skew=%.2f",
		s.RowsIn, s.RowsShuffled, s.ReductionFactor(), s.RowsLocal, s.BytesOnWire, s.MaxSkew())
}

// JoinShuffle runs the two-sided shuffle of a distributed hash join: both
// inputs are partitioned on the key, each side optionally prefiltered.
// It returns per-side stats and the total bytes on the wire.
func (c *Cluster) JoinShuffle(build, probe []Row, buildOrigin, probeOrigin func(int) int, buildFilter, probeFilter KeyFilter) (ShuffleStats, ShuffleStats, int64) {
	bs := c.Shuffle(build, buildOrigin, buildFilter)
	ps := c.Shuffle(probe, probeOrigin, probeFilter)
	return bs, ps, bs.BytesOnWire + ps.BytesOnWire
}
