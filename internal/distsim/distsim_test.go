package distsim

import (
	"strings"
	"testing"

	"ccf/internal/core"
)

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, 1); err == nil {
		t.Fatal("zero workers accepted")
	}
	c, err := NewCluster(4, 1)
	if err != nil || c.Workers() != 4 {
		t.Fatalf("NewCluster: %v", err)
	}
}

func TestHomeDeterministicAndBounded(t *testing.T) {
	c, _ := NewCluster(8, 2)
	for k := uint32(0); k < 1000; k++ {
		h := c.Home(k)
		if h < 0 || h >= 8 {
			t.Fatalf("home %d out of range", h)
		}
		if h != c.Home(k) {
			t.Fatal("home not deterministic")
		}
	}
}

func TestShuffleAccounting(t *testing.T) {
	c, _ := NewCluster(2, 3)
	rows := []Row{{Key: 1, Bytes: 100}, {Key: 2, Bytes: 100}, {Key: 3, Bytes: 100}}
	// All rows originate at worker 0; rows homed at worker 0 are free.
	stats := c.Shuffle(rows, func(int) int { return 0 }, nil)
	if stats.RowsIn != 3 || stats.RowsShuffled != 3 {
		t.Fatalf("counts wrong: %+v", stats)
	}
	if stats.RowsLocal+int(stats.BytesOnWire)/100 != 3 {
		t.Fatalf("local + wire rows must cover all shuffled: %+v", stats)
	}
	if got := stats.ReductionFactor(); got != 1 {
		t.Fatalf("unfiltered RF = %v", got)
	}
	if !strings.Contains(stats.String(), "rf 1.000") {
		t.Fatalf("String: %s", stats)
	}
}

func TestShuffleFilterCutsTraffic(t *testing.T) {
	c, _ := NewCluster(4, 4)
	var rows []Row
	for k := uint32(0); k < 4000; k++ {
		rows = append(rows, Row{Key: k, Bytes: 64})
	}
	keep := func(k uint32) bool { return k%10 == 0 }
	unfiltered := c.Shuffle(rows, nil, nil)
	filtered := c.Shuffle(rows, nil, keep)
	if filtered.RowsShuffled != 400 {
		t.Fatalf("filtered shuffle sent %d rows, want 400", filtered.RowsShuffled)
	}
	if filtered.BytesOnWire >= unfiltered.BytesOnWire/5 {
		t.Fatalf("traffic not cut: %d vs %d", filtered.BytesOnWire, unfiltered.BytesOnWire)
	}
	if rf := filtered.ReductionFactor(); rf != 0.1 {
		t.Fatalf("RF = %v, want 0.1", rf)
	}
}

func TestShuffleBalance(t *testing.T) {
	c, _ := NewCluster(8, 5)
	var rows []Row
	for k := uint32(0); k < 80000; k++ {
		rows = append(rows, Row{Key: k, Bytes: 1})
	}
	stats := c.Shuffle(rows, nil, nil)
	if skew := stats.MaxSkew(); skew > 1.1 {
		t.Fatalf("hash partitioning skew %.3f too high", skew)
	}
}

func TestEmptyShuffle(t *testing.T) {
	c, _ := NewCluster(2, 6)
	stats := c.Shuffle(nil, nil, nil)
	if stats.ReductionFactor() != 1 || stats.MaxSkew() != 1 {
		t.Fatalf("empty shuffle stats: %+v", stats)
	}
}

func TestJoinShuffleWithRealCCF(t *testing.T) {
	// End-to-end with a real filter: a CCF on the dimension side
	// prefilters the fact shuffle; the traffic drop matches the filter's
	// selectivity, and no qualifying row is lost.
	f, err := core.New(core.Params{Variant: core.VariantChained, NumAttrs: 1, Capacity: 4096, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Dimension: keys 0..999, attribute = key%5.
	for k := uint64(0); k < 1000; k++ {
		if err := f.Insert(k, []uint64{k % 5}); err != nil {
			t.Fatal(err)
		}
	}
	pred := core.And(core.Eq(0, 2)) // selects keys ≡ 2 mod 5
	c, _ := NewCluster(4, 8)
	var fact []Row
	for i := uint32(0); i < 5000; i++ {
		fact = append(fact, Row{Key: i % 1500, Bytes: 32}) // keys 1000+ miss the dimension
	}
	filter := func(k uint32) bool { return f.Query(uint64(k), pred) }
	unfiltered := c.Shuffle(fact, nil, nil)
	filtered := c.Shuffle(fact, nil, filter)
	// Selectivity: of keys 0..999, 1/5 qualify; keys 1000..1499 are absent.
	// Expected RF ≈ (1000/5)/1500 ≈ 0.133 plus filter FPs.
	rf := filtered.ReductionFactor()
	if rf < 0.12 || rf > 0.20 {
		t.Fatalf("filtered RF %.3f outside expected band", rf)
	}
	if filtered.BytesOnWire >= unfiltered.BytesOnWire {
		t.Fatal("filter did not cut traffic")
	}
	// No false negatives: every truly-matching row must have been sent.
	for _, r := range fact {
		if r.Key < 1000 && r.Key%5 == 2 && !filter(r.Key) {
			t.Fatalf("qualifying key %d dropped", r.Key)
		}
	}
	// Two-sided accounting.
	bs, ps, total := c.JoinShuffle(fact[:100], fact, nil, nil, nil, filter)
	if total != bs.BytesOnWire+ps.BytesOnWire {
		t.Fatal("join shuffle total mismatch")
	}
}
