// Package cuckoohash implements cuckoo hash tables (§4.1): an open
// addressing table that relocates residents at insertion time so queries
// probe at most two buckets, plus the paper's chaining extension applied to
// full-key tables (§11: "the chaining technique can also be used to allow
// regular cuckoo hash tables, which store the full key, to store
// duplicates").
package cuckoohash

import (
	"errors"
	"math/rand"

	"ccf/internal/hashing"
)

// HashFunc hashes a key under a salt; different salts must behave as
// independent hash functions.
type HashFunc[K comparable] func(key K, salt uint64) uint64

// Uint64Hash is a HashFunc for uint64 keys.
func Uint64Hash(key uint64, salt uint64) uint64 { return hashing.Key64(key, salt) }

// StringHash is a HashFunc for string keys using lookup3.
func StringHash(key string, salt uint64) uint64 {
	return hashing.Hash64([]byte(key), salt)
}

// ErrFull is returned when an insertion exhausts its displacement budget
// and the table cannot grow.
var ErrFull = errors.New("cuckoohash: table full")

const (
	saltH1            = 0x811c
	saltAlt           = 0x01b7
	defaultBucketSize = 4
	defaultMaxKicks   = 500
	maxBuckets        = 1 << 28
)

type entry[K comparable, V any] struct {
	key  K
	val  V
	used bool
}

// Table is a cuckoo hash table mapping K to V with unique keys. A Put of an
// existing key updates its value. The table grows (doubling the bucket
// count and rehashing) when an insertion fails, giving O(1) amortized
// expected insertion as described in §4.
type Table[K comparable, V any] struct {
	entries  []entry[K, V]
	m        uint32
	mask     uint32
	b        int
	maxKicks int
	seed     uint64
	hash     HashFunc[K]
	rng      *rand.Rand
	len      int
	autoGrow bool
}

// NewTable returns a table sized for capacity items. hash must not be nil.
func NewTable[K comparable, V any](capacity int, hash HashFunc[K], seed uint64) (*Table[K, V], error) {
	if hash == nil {
		return nil, errors.New("cuckoohash: nil hash function")
	}
	if capacity < 1 {
		capacity = 1
	}
	m := nextPow2(uint32((capacity/defaultBucketSize + 1) * 100 / 90))
	t := &Table[K, V]{
		entries:  make([]entry[K, V], int(m)*defaultBucketSize),
		m:        m,
		mask:     m - 1,
		b:        defaultBucketSize,
		maxKicks: defaultMaxKicks,
		seed:     seed,
		hash:     hash,
		rng:      rand.New(rand.NewSource(int64(seed) ^ 0x3c6ef372)),
		autoGrow: true,
	}
	return t, nil
}

func nextPow2(v uint32) uint32 {
	if v == 0 {
		return 1
	}
	v--
	v |= v >> 1
	v |= v >> 2
	v |= v >> 4
	v |= v >> 8
	v |= v >> 16
	return v + 1
}

func (t *Table[K, V]) bucket1(k K) uint32 {
	return uint32(t.hash(k, t.seed^saltH1)) & t.mask
}

// bucket2 derives the partner bucket by XOR with a key-derived offset, so a
// resident's partner can be computed from the resident itself during kicks.
func (t *Table[K, V]) bucket2(k K, b1 uint32) uint32 {
	off := uint32(t.hash(k, t.seed^saltAlt)) & t.mask
	if off == 0 {
		off = 1
	}
	return b1 ^ off
}

func (t *Table[K, V]) findInBucket(bucket uint32, k K) int {
	base := int(bucket) * t.b
	for j := 0; j < t.b; j++ {
		if t.entries[base+j].used && t.entries[base+j].key == k {
			return base + j
		}
	}
	return -1
}

func (t *Table[K, V]) emptyInBucket(bucket uint32) int {
	base := int(bucket) * t.b
	for j := 0; j < t.b; j++ {
		if !t.entries[base+j].used {
			return base + j
		}
	}
	return -1
}

// Get returns the value stored for k.
func (t *Table[K, V]) Get(k K) (V, bool) {
	b1 := t.bucket1(k)
	if i := t.findInBucket(b1, k); i >= 0 {
		return t.entries[i].val, true
	}
	b2 := t.bucket2(k, b1)
	if i := t.findInBucket(b2, k); i >= 0 {
		return t.entries[i].val, true
	}
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (t *Table[K, V]) Contains(k K) bool {
	_, ok := t.Get(k)
	return ok
}

// Put inserts or updates k.
func (t *Table[K, V]) Put(k K, v V) error {
	for {
		b1 := t.bucket1(k)
		b2 := t.bucket2(k, b1)
		if i := t.findInBucket(b1, k); i >= 0 {
			t.entries[i].val = v
			return nil
		}
		if i := t.findInBucket(b2, k); i >= 0 {
			t.entries[i].val = v
			return nil
		}
		if t.place(k, v, b1, b2) {
			return nil
		}
		if !t.autoGrow {
			return ErrFull
		}
		if err := t.grow(); err != nil {
			return err
		}
	}
}

// place performs the cuckoo insertion with kicks; it assumes k is absent.
// On failure every displacement is rolled back, leaving the table unchanged.
func (t *Table[K, V]) place(k K, v V, b1, b2 uint32) bool {
	if i := t.emptyInBucket(b1); i >= 0 {
		t.entries[i] = entry[K, V]{key: k, val: v, used: true}
		t.len++
		return true
	}
	if i := t.emptyInBucket(b2); i >= 0 {
		t.entries[i] = entry[K, V]{key: k, val: v, used: true}
		t.len++
		return true
	}
	cur := b1
	if t.rng.Intn(2) == 1 {
		cur = b2
	}
	type swap struct{ idx int }
	var path []swap
	carried := entry[K, V]{key: k, val: v, used: true}
	for kick := 0; kick < t.maxKicks; kick++ {
		j := t.rng.Intn(t.b)
		idx := int(cur)*t.b + j
		carried, t.entries[idx] = t.entries[idx], carried
		path = append(path, swap{idx: idx})
		cur = t.bucket2(carried.key, cur)
		if i := t.emptyInBucket(cur); i >= 0 {
			t.entries[i] = carried
			t.len++
			return true
		}
	}
	// Roll back: undo swaps in reverse so the original residents return to
	// their slots and the new item is dropped.
	for i := len(path) - 1; i >= 0; i-- {
		idx := path[i].idx
		carried, t.entries[idx] = t.entries[idx], carried
	}
	return false
}

// grow doubles the table and rehashes every entry.
func (t *Table[K, V]) grow() error {
	old := t.entries
	for {
		if t.m >= maxBuckets {
			t.entries = old
			return ErrFull
		}
		t.m *= 2
		t.mask = t.m - 1
		t.entries = make([]entry[K, V], int(t.m)*t.b)
		t.len = 0
		ok := true
		prevAuto := t.autoGrow
		t.autoGrow = false
		for _, e := range old {
			if !e.used {
				continue
			}
			if err := t.Put(e.key, e.val); err != nil {
				ok = false
				break
			}
		}
		t.autoGrow = prevAuto
		if ok {
			return nil
		}
	}
}

// Delete removes k and reports whether it was present.
func (t *Table[K, V]) Delete(k K) bool {
	b1 := t.bucket1(k)
	if i := t.findInBucket(b1, k); i >= 0 {
		t.entries[i] = entry[K, V]{}
		t.len--
		return true
	}
	b2 := t.bucket2(k, b1)
	if i := t.findInBucket(b2, k); i >= 0 {
		t.entries[i] = entry[K, V]{}
		t.len--
		return true
	}
	return false
}

// Len returns the number of stored keys.
func (t *Table[K, V]) Len() int { return t.len }

// LoadFactor returns the fraction of occupied entries.
func (t *Table[K, V]) LoadFactor() float64 {
	return float64(t.len) / float64(int(t.m)*t.b)
}

// NumBuckets returns the current bucket count.
func (t *Table[K, V]) NumBuckets() uint32 { return t.m }

// SetAutoGrow toggles growth on insertion failure (on by default).
func (t *Table[K, V]) SetAutoGrow(on bool) { t.autoGrow = on }

// Range calls fn for every (key, value) pair until fn returns false.
func (t *Table[K, V]) Range(fn func(k K, v V) bool) {
	for _, e := range t.entries {
		if e.used && !fn(e.key, e.val) {
			return
		}
	}
}
