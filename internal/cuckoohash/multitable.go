package cuckoohash

import (
	"errors"

	"ccf/internal/hashing"
)

// ErrChainTooLong is returned when an insertion would exceed the configured
// maximum chain length.
var ErrChainTooLong = errors.New("cuckoohash: chain length exceeded")

const (
	saltChain = 0x2b99
	// hardChainCap bounds chain walks even when MaxChain is unlimited,
	// guarding against adversarial or pathological inputs.
	hardChainCap = 1 << 16
)

// MultiTable is a cuckoo hash table storing duplicate keys using the CCF
// paper's chaining technique (§6.2) applied to full keys (§11). At most
// maxDupes rows per key live in any bucket pair; further rows spill to
// chained bucket pairs derived by hashing the pair and the key.
type MultiTable[K comparable, V any] struct {
	entries  []entry[K, V]
	m        uint32
	mask     uint32
	b        int
	maxKicks int
	maxDupes int
	maxChain int // 0 = unlimited (up to hardChainCap)
	seed     uint64
	hash     HashFunc[K]
	rngState uint64
	len      int
}

// MultiOptions configures a MultiTable. Zero values choose b = 2·d per the
// paper's rule of thumb (§8), d = 3, 500 kicks, unlimited chains.
type MultiOptions struct {
	BucketSize int
	MaxDupes   int
	MaxChain   int
	MaxKicks   int
	Seed       uint64
}

// NewMultiTable returns a duplicate-tolerant table sized for capacity rows.
func NewMultiTable[K comparable, V any](capacity int, hash HashFunc[K], opt MultiOptions) (*MultiTable[K, V], error) {
	if hash == nil {
		return nil, errors.New("cuckoohash: nil hash function")
	}
	if opt.MaxDupes == 0 {
		opt.MaxDupes = 3
	}
	if opt.MaxDupes < 1 {
		return nil, errors.New("cuckoohash: MaxDupes < 1")
	}
	if opt.BucketSize == 0 {
		opt.BucketSize = 2 * opt.MaxDupes
	}
	if opt.BucketSize < 1 {
		return nil, errors.New("cuckoohash: BucketSize < 1")
	}
	if opt.MaxKicks == 0 {
		opt.MaxKicks = 500
	}
	if capacity < 1 {
		capacity = 1
	}
	m := nextPow2(uint32((capacity/opt.BucketSize + 1) * 100 / 85))
	t := &MultiTable[K, V]{
		entries:  make([]entry[K, V], int(m)*opt.BucketSize),
		m:        m,
		mask:     m - 1,
		b:        opt.BucketSize,
		maxKicks: opt.MaxKicks,
		maxDupes: opt.MaxDupes,
		maxChain: opt.MaxChain,
		seed:     opt.Seed,
		hash:     hash,
		rngState: opt.Seed ^ 0xa54ff53a,
	}
	return t, nil
}

func (t *MultiTable[K, V]) nextRand() uint64 {
	t.rngState = t.rngState*6364136223846793005 + 1442695040888963407
	return t.rngState >> 33
}

func (t *MultiTable[K, V]) bucket1(k K) uint32 {
	return uint32(t.hash(k, t.seed^saltH1)) & t.mask
}

func (t *MultiTable[K, V]) pairOffset(k K) uint32 {
	off := uint32(t.hash(k, t.seed^saltAlt)) & t.mask
	if off == 0 {
		off = 1
	}
	return off
}

// chainNext derives the next pair's first bucket from the normalized pair
// id and the key: ℓ̃ = h(min(ℓ, ℓ′), k) (§6.2). salt breaks cycles.
func (t *MultiTable[K, V]) chainNext(pairMin uint32, k K, salt uint32) uint32 {
	kh := t.hash(k, t.seed^saltChain)
	return uint32(hashing.Combine3(uint64(pairMin), kh, uint64(salt))) & t.mask
}

// pairSeq iterates the deterministic sequence of bucket pairs for key k,
// applying cycle detection with salt-based chain extension: a candidate
// pair already visited in this walk is re-derived with an incremented salt,
// so insert and query traverse identical sequences.
type pairSeq[K comparable, V any] struct {
	t       *MultiTable[K, V]
	k       K
	off     uint32
	cur     uint32 // current pair's first bucket
	visited []uint32
	steps   int
}

func (t *MultiTable[K, V]) newPairSeq(k K) pairSeq[K, V] {
	b1 := t.bucket1(k)
	s := pairSeq[K, V]{t: t, k: k, off: t.pairOffset(k), cur: b1}
	s.visited = append(s.visited, s.pairMin())
	return s
}

func (s *pairSeq[K, V]) buckets() (uint32, uint32) {
	return s.cur, s.cur ^ s.off
}

func (s *pairSeq[K, V]) pairMin() uint32 {
	b1, b2 := s.buckets()
	if b2 < b1 {
		return b2
	}
	return b1
}

func (s *pairSeq[K, V]) seen(pm uint32) bool {
	for _, v := range s.visited {
		if v == pm {
			return true
		}
	}
	return false
}

// advance moves to the next pair in the chain and reports whether the walk
// may continue under the chain-length limit.
func (s *pairSeq[K, V]) advance() bool {
	s.steps++
	if s.t.maxChain > 0 && s.steps >= s.t.maxChain {
		return false
	}
	if s.steps >= hardChainCap {
		return false
	}
	salt := uint32(0)
	next := s.t.chainNext(s.pairMin(), s.k, salt)
	for {
		pmCandidate := next
		alt := next ^ s.off
		if alt < pmCandidate {
			pmCandidate = alt
		}
		if !s.seen(pmCandidate) {
			s.visited = append(s.visited, pmCandidate)
			s.cur = next
			return true
		}
		salt++
		if salt > 1<<20 {
			return false
		}
		next = s.t.chainNext(s.pairMin(), s.k, salt)
	}
}

func (t *MultiTable[K, V]) countInPair(b1, b2 uint32, k K) int {
	n := 0
	for _, bkt := range []uint32{b1, b2} {
		base := int(bkt) * t.b
		for j := 0; j < t.b; j++ {
			if t.entries[base+j].used && t.entries[base+j].key == k {
				n++
			}
		}
		if b1 == b2 {
			break
		}
	}
	return n
}

// Add inserts one (k, v) row, allowing duplicates of k (and of (k, v)).
func (t *MultiTable[K, V]) Add(k K, v V) error {
	seq := t.newPairSeq(k)
	for {
		b1, b2 := seq.buckets()
		if t.countInPair(b1, b2, k) < t.maxDupes {
			if t.placeMulti(k, v, b1, b2) {
				return nil
			}
			return ErrFull
		}
		if !seq.advance() {
			return ErrChainTooLong
		}
	}
}

func (t *MultiTable[K, V]) emptySlot(bucket uint32) int {
	base := int(bucket) * t.b
	for j := 0; j < t.b; j++ {
		if !t.entries[base+j].used {
			return base + j
		}
	}
	return -1
}

// placeMulti inserts with kicks. Victims relocate within their own pair, so
// per-pair duplicate counts are preserved (Lemma 1); on failure all
// displacements are rolled back.
func (t *MultiTable[K, V]) placeMulti(k K, v V, b1, b2 uint32) bool {
	if i := t.emptySlot(b1); i >= 0 {
		t.entries[i] = entry[K, V]{key: k, val: v, used: true}
		t.len++
		return true
	}
	if i := t.emptySlot(b2); i >= 0 {
		t.entries[i] = entry[K, V]{key: k, val: v, used: true}
		t.len++
		return true
	}
	cur := b1
	if t.nextRand()&1 == 1 {
		cur = b2
	}
	var path []int
	carried := entry[K, V]{key: k, val: v, used: true}
	for kick := 0; kick < t.maxKicks; kick++ {
		j := int(t.nextRand()) % t.b
		idx := int(cur)*t.b + j
		carried, t.entries[idx] = t.entries[idx], carried
		path = append(path, idx)
		cur = cur ^ t.pairOffset(carried.key)
		if i := t.emptySlot(cur); i >= 0 {
			t.entries[i] = carried
			t.len++
			return true
		}
	}
	for i := len(path) - 1; i >= 0; i-- {
		carried, t.entries[path[i]] = t.entries[path[i]], carried
	}
	return false
}

// GetAll returns every value stored under k, walking the chain exactly as a
// query would: the walk continues past a pair only when it holds maxDupes
// rows of k.
func (t *MultiTable[K, V]) GetAll(k K) []V {
	var out []V
	seq := t.newPairSeq(k)
	for {
		b1, b2 := seq.buckets()
		n := 0
		for _, bkt := range []uint32{b1, b2} {
			base := int(bkt) * t.b
			for j := 0; j < t.b; j++ {
				e := &t.entries[base+j]
				if e.used && e.key == k {
					out = append(out, e.val)
					n++
				}
			}
			if b1 == b2 {
				break
			}
		}
		if n < t.maxDupes {
			return out
		}
		if !seq.advance() {
			return out
		}
	}
}

// CountKey returns the number of rows stored under k.
func (t *MultiTable[K, V]) CountKey(k K) int { return len(t.GetAll(k)) }

// Len returns the total number of stored rows.
func (t *MultiTable[K, V]) Len() int { return t.len }

// LoadFactor returns the fraction of occupied entries.
func (t *MultiTable[K, V]) LoadFactor() float64 {
	return float64(t.len) / float64(int(t.m)*t.b)
}

// NumBuckets returns the bucket count.
func (t *MultiTable[K, V]) NumBuckets() uint32 { return t.m }
