package cuckoohash

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func TestTablePutGet(t *testing.T) {
	tab, err := NewTable[uint64, string](100, Uint64Hash, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := tab.Put(i, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if tab.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tab.Len())
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := tab.Get(i)
		if !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%d) = %q, %v", i, v, ok)
		}
	}
	if _, ok := tab.Get(1000); ok {
		t.Fatal("absent key found")
	}
}

func TestTableNilHash(t *testing.T) {
	if _, err := NewTable[uint64, int](10, nil, 0); err == nil {
		t.Fatal("nil hash should error")
	}
}

func TestTableUpdate(t *testing.T) {
	tab, _ := NewTable[string, int](10, StringHash, 2)
	if err := tab.Put("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := tab.Put("a", 2); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d after update, want 1", tab.Len())
	}
	if v, _ := tab.Get("a"); v != 2 {
		t.Fatalf("value %d, want 2", v)
	}
}

func TestTableDelete(t *testing.T) {
	tab, _ := NewTable[uint64, int](100, Uint64Hash, 3)
	for i := uint64(0); i < 50; i++ {
		if err := tab.Put(i, int(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 50; i += 2 {
		if !tab.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tab.Delete(0) {
		t.Fatal("double delete succeeded")
	}
	if tab.Len() != 25 {
		t.Fatalf("Len = %d, want 25", tab.Len())
	}
	for i := uint64(1); i < 50; i += 2 {
		if !tab.Contains(i) {
			t.Fatalf("retained key %d missing", i)
		}
	}
}

func TestTableGrowth(t *testing.T) {
	tab, _ := NewTable[uint64, int](4, Uint64Hash, 4)
	before := tab.NumBuckets()
	for i := uint64(0); i < 10000; i++ {
		if err := tab.Put(i, int(i)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	if tab.NumBuckets() <= before {
		t.Fatal("table did not grow")
	}
	for i := uint64(0); i < 10000; i++ {
		if v, ok := tab.Get(i); !ok || v != int(i) {
			t.Fatalf("key %d lost after growth", i)
		}
	}
}

func TestTableNoGrowFull(t *testing.T) {
	tab, _ := NewTable[uint64, int](4, Uint64Hash, 5)
	tab.SetAutoGrow(false)
	var sawFull bool
	stored := map[uint64]int{}
	for i := uint64(0); i < 10000; i++ {
		err := tab.Put(i, int(i))
		if err == ErrFull {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		stored[i] = int(i)
	}
	if !sawFull {
		t.Fatal("fixed-size table never filled")
	}
	// Failed insert must not corrupt existing entries (rollback).
	for k, v := range stored {
		got, ok := tab.Get(k)
		if !ok || got != v {
			t.Fatalf("entry %d corrupted after failed insert", k)
		}
	}
}

func TestTableRange(t *testing.T) {
	tab, _ := NewTable[uint64, int](10, Uint64Hash, 6)
	for i := uint64(0); i < 5; i++ {
		if err := tab.Put(i, int(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	sum := 0
	tab.Range(func(k uint64, v int) bool { sum += v; return true })
	if sum != 100 {
		t.Fatalf("Range sum = %d, want 100", sum)
	}
	n := 0
	tab.Range(func(k uint64, v int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-terminated Range visited %d, want 1", n)
	}
}

func TestTableMatchesMapReference(t *testing.T) {
	prop := func(ops []uint16) bool {
		tab, _ := NewTable[uint64, uint16](16, Uint64Hash, 7)
		ref := map[uint64]uint16{}
		for i, op := range ops {
			k := uint64(op % 64)
			switch i % 3 {
			case 0, 1:
				if err := tab.Put(k, op); err != nil {
					return false
				}
				ref[k] = op
			case 2:
				got := tab.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			}
		}
		if tab.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tab.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiTableBasics(t *testing.T) {
	mt, err := NewMultiTable[uint64, int](1000, Uint64Hash, MultiOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 20 copies of one key: far beyond the 2b cap of a plain pair.
	for i := 0; i < 20; i++ {
		if err := mt.Add(77, i); err != nil {
			t.Fatalf("Add copy %d: %v", i, err)
		}
	}
	got := mt.GetAll(77)
	if len(got) != 20 {
		t.Fatalf("GetAll returned %d values, want 20", len(got))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("values corrupted: %v", got)
		}
	}
	if mt.CountKey(77) != 20 {
		t.Fatalf("CountKey = %d", mt.CountKey(77))
	}
	if mt.CountKey(78) != 0 {
		t.Fatal("absent key has values")
	}
}

func TestMultiTableOptionsValidation(t *testing.T) {
	if _, err := NewMultiTable[uint64, int](10, nil, MultiOptions{}); err == nil {
		t.Fatal("nil hash should error")
	}
	if _, err := NewMultiTable[uint64, int](10, Uint64Hash, MultiOptions{MaxDupes: -1}); err == nil {
		t.Fatal("negative MaxDupes should error")
	}
	if _, err := NewMultiTable[uint64, int](10, Uint64Hash, MultiOptions{BucketSize: -1}); err == nil {
		t.Fatal("negative BucketSize should error")
	}
	mt, err := NewMultiTable[uint64, int](10, Uint64Hash, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mt.b != 6 {
		t.Fatalf("default bucket size %d, want 2·d = 6", mt.b)
	}
}

func TestMultiTableManyKeysManyDupes(t *testing.T) {
	mt, err := NewMultiTable[uint64, uint64](20000, Uint64Hash, MultiOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	const keys, dupes = 1000, 12
	for k := uint64(0); k < keys; k++ {
		for d := uint64(0); d < dupes; d++ {
			if err := mt.Add(k, k*100+d); err != nil {
				t.Fatalf("Add(%d, %d): %v", k, d, err)
			}
		}
	}
	for k := uint64(0); k < keys; k++ {
		vals := mt.GetAll(k)
		if len(vals) != dupes {
			t.Fatalf("key %d: %d values, want %d", k, len(vals), dupes)
		}
		seen := map[uint64]bool{}
		for _, v := range vals {
			if v/100 != k {
				t.Fatalf("key %d: foreign value %d", k, v)
			}
			if seen[v] {
				t.Fatalf("key %d: duplicate value %d", k, v)
			}
			seen[v] = true
		}
	}
	if mt.Len() != keys*dupes {
		t.Fatalf("Len = %d, want %d", mt.Len(), keys*dupes)
	}
}

func TestMultiTableMaxChain(t *testing.T) {
	mt, err := NewMultiTable[uint64, int](1000, Uint64Hash, MultiOptions{MaxDupes: 2, MaxChain: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With d=2 and Lmax=2 a key can hold at most 2·2·2 = 8 rows... actually
	// d rows per pair × Lmax pairs = 4. The 5th must fail with ErrChainTooLong.
	var chainErr error
	added := 0
	for i := 0; i < 10; i++ {
		if err := mt.Add(5, i); err != nil {
			chainErr = err
			break
		}
		added++
	}
	if chainErr != ErrChainTooLong {
		t.Fatalf("expected ErrChainTooLong, got %v after %d adds", chainErr, added)
	}
	if added != 4 {
		t.Fatalf("added %d rows before chain limit, want 4", added)
	}
}

func TestMultiTableLoadFactorWithSkew(t *testing.T) {
	// Heavily skewed duplicates should still reach a reasonable load factor,
	// the paper's headline multiset result (Figure 4).
	mt, err := NewMultiTable[uint64, int](4096, Uint64Hash, MultiOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	inserted := 0
	key := uint64(0)
	for {
		dupes := 1 + int(key%23) // skewed multiplicities 1..23
		failed := false
		for d := 0; d < dupes; d++ {
			if err := mt.Add(key, d); err != nil {
				failed = true
				break
			}
			inserted++
		}
		if failed {
			break
		}
		key++
	}
	if lf := mt.LoadFactor(); lf < 0.6 {
		t.Fatalf("load factor at first failure %.3f, want ≥ 0.6 with chaining", lf)
	}
}

func TestMultiTableDeterministicWalk(t *testing.T) {
	// GetAll must see every row that Add stored, including through chains
	// with cycle extension (same deterministic pair sequence).
	prop := func(counts []uint8) bool {
		mt, err := NewMultiTable[uint64, int](8192, Uint64Hash, MultiOptions{Seed: 5})
		if err != nil {
			return false
		}
		want := map[uint64]int{}
		for k, c := range counts {
			n := int(c%40) + 1
			for i := 0; i < n; i++ {
				if err := mt.Add(uint64(k), i); err != nil {
					return false
				}
			}
			want[uint64(k)] = n
		}
		for k, n := range want {
			if got := mt.CountKey(k); got != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
