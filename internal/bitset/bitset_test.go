package bitset

import (
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(200)
	if b.Len() != 200 {
		t.Fatalf("Len = %d, want 200", b.Len())
	}
	for i := 0; i < 200; i += 7 {
		b.Set(i)
	}
	for i := 0; i < 200; i++ {
		want := i%7 == 0
		if b.Get(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, b.Get(i), want)
		}
	}
	b.Clear(0)
	if b.Get(0) {
		t.Fatal("bit 0 still set after Clear")
	}
}

func TestCountAndFillRatio(t *testing.T) {
	b := New(128)
	if b.Count() != 0 || b.FillRatio() != 0 {
		t.Fatal("fresh bitset not empty")
	}
	for i := 0; i < 64; i++ {
		b.Set(i)
	}
	if b.Count() != 64 {
		t.Fatalf("Count = %d, want 64", b.Count())
	}
	if b.FillRatio() != 0.5 {
		t.Fatalf("FillRatio = %v, want 0.5", b.FillRatio())
	}
}

func TestReset(t *testing.T) {
	b := New(77)
	for i := 0; i < 77; i++ {
		b.Set(i)
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatalf("Count after Reset = %d", b.Count())
	}
	if b.Len() != 77 {
		t.Fatalf("Len changed by Reset: %d", b.Len())
	}
}

func TestCloneIndependent(t *testing.T) {
	b := New(10)
	b.Set(3)
	c := b.Clone()
	if !c.Get(3) {
		t.Fatal("clone lost bit 3")
	}
	c.Set(5)
	if b.Get(5) {
		t.Fatal("mutating clone affected original")
	}
	if !b.Equal(b.Clone()) {
		t.Fatal("clone not Equal to original")
	}
}

func TestUnion(t *testing.T) {
	a, b := New(65), New(65)
	a.Set(1)
	b.Set(64)
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.Get(1) || !a.Get(64) {
		t.Fatal("union missing bits")
	}
	if err := a.Union(New(64)); err == nil {
		t.Fatal("union of mismatched lengths should error")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(32), New(32)
	if !a.Equal(b) {
		t.Fatal("empty sets unequal")
	}
	a.Set(31)
	if a.Equal(b) {
		t.Fatal("different sets equal")
	}
	if a.Equal(New(33)) {
		t.Fatal("different lengths equal")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := func(idxs []uint16, size uint16) bool {
		n := int(size)%512 + 1
		b := New(n)
		for _, i := range idxs {
			b.Set(int(i) % n)
		}
		data, err := b.MarshalBinary()
		if err != nil {
			return false
		}
		var c Bits
		if err := c.UnmarshalBinary(data); err != nil {
			return false
		}
		return b.Equal(&c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var b Bits
	if err := b.UnmarshalBinary(nil); err == nil {
		t.Fatal("nil buffer should error")
	}
	if err := b.UnmarshalBinary(make([]byte, 9)); err == nil {
		t.Fatal("mis-sized buffer should error")
	}
}

func TestZeroLength(t *testing.T) {
	b := New(0)
	if b.Count() != 0 || b.Len() != 0 || b.FillRatio() != 0 {
		t.Fatal("zero-length bitset misbehaves")
	}
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var c Bits
	if err := c.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatal("round-trip changed length")
	}
}
