// Package bitset implements a fixed-size bit array used as the backing store
// for Bloom filters and packed fingerprint tables.
package bitset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Bits is a fixed-length bit array. The zero value is an empty, zero-length
// array; use New to create one with capacity.
type Bits struct {
	words []uint64
	n     int
}

// New returns a Bits holding n bits, all zero.
func New(n int) *Bits {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Bits{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits in the array.
func (b *Bits) Len() int { return b.n }

// Set sets bit i to 1.
func (b *Bits) Set(i int) {
	b.words[i>>6] |= 1 << uint(i&63)
}

// Clear sets bit i to 0.
func (b *Bits) Clear(i int) {
	b.words[i>>6] &^= 1 << uint(i&63)
}

// Get reports whether bit i is 1.
func (b *Bits) Get(i int) bool {
	return b.words[i>>6]>>uint(i&63)&1 == 1
}

// Count returns the number of set bits.
func (b *Bits) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset zeroes all bits.
func (b *Bits) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Clone returns a deep copy.
func (b *Bits) Clone() *Bits {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bits{words: w, n: b.n}
}

// Union ORs other into b. Both must have the same length.
func (b *Bits) Union(other *Bits) error {
	if b.n != other.n {
		return fmt.Errorf("bitset: union of mismatched lengths %d and %d", b.n, other.n)
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
	return nil
}

// Equal reports whether b and other hold identical bits.
func (b *Bits) Equal(other *Bits) bool {
	if b.n != other.n {
		return false
	}
	for i, w := range b.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// FillRatio returns the fraction of bits set.
func (b *Bits) FillRatio() float64 {
	if b.n == 0 {
		return 0
	}
	return float64(b.Count()) / float64(b.n)
}

// MarshalBinary encodes the bit array.
func (b *Bits) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8+8*len(b.words))
	binary.LittleEndian.PutUint64(out, uint64(b.n))
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(out[8+8*i:], w)
	}
	return out, nil
}

// UnmarshalBinary decodes a bit array produced by MarshalBinary.
func (b *Bits) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return errors.New("bitset: short buffer")
	}
	n := int(binary.LittleEndian.Uint64(data))
	words := (n + 63) / 64
	if len(data) != 8+8*words {
		return fmt.Errorf("bitset: buffer length %d does not match bit count %d", len(data), n)
	}
	b.n = n
	b.words = make([]uint64, words)
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(data[8+8*i:])
	}
	return nil
}
