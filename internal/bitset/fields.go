package bitset

// Fixed-width field access: Bits doubles as a packed array of w-bit
// integers, the representation behind the frozen CCF storage (§9 of the
// paper: sketches are stored packed, with attribute fingerprints in
// columnar form).

// PutUint writes the low width bits of v starting at bit position pos.
// width must be in [1, 64] and the field must lie within the array.
func (b *Bits) PutUint(pos, width int, v uint64) {
	if width <= 0 || width > 64 || pos < 0 || pos+width > b.n {
		panic("bitset: field out of range")
	}
	if width < 64 {
		v &= 1<<uint(width) - 1
	}
	word := pos >> 6
	off := uint(pos & 63)
	// Clear then set the low part.
	lowWidth := uint(64) - off
	if int(lowWidth) > width {
		lowWidth = uint(width)
	}
	lowMask := (uint64(1)<<lowWidth - 1) << off
	b.words[word] = b.words[word]&^lowMask | v<<off&lowMask
	if int(lowWidth) < width {
		highWidth := uint(width) - lowWidth
		highMask := uint64(1)<<highWidth - 1
		b.words[word+1] = b.words[word+1]&^highMask | v>>lowWidth&highMask
	}
}

// Uint reads a width-bit field starting at bit position pos.
func (b *Bits) Uint(pos, width int) uint64 {
	if width <= 0 || width > 64 || pos < 0 || pos+width > b.n {
		panic("bitset: field out of range")
	}
	word := pos >> 6
	off := uint(pos & 63)
	v := b.words[word] >> off
	lowWidth := uint(64) - off
	if int(lowWidth) < width {
		v |= b.words[word+1] << lowWidth
	}
	if width < 64 {
		v &= 1<<uint(width) - 1
	}
	return v
}
