package bitset

import (
	"testing"
	"testing/quick"
)

func TestPutUintGetUint(t *testing.T) {
	b := New(256)
	b.PutUint(0, 12, 0xabc)
	if got := b.Uint(0, 12); got != 0xabc {
		t.Fatalf("got %#x, want 0xabc", got)
	}
	// Cross-word field (bits 60..75).
	b.PutUint(60, 16, 0xbeef)
	if got := b.Uint(60, 16); got != 0xbeef {
		t.Fatalf("cross-word got %#x, want 0xbeef", got)
	}
	// First field untouched.
	if got := b.Uint(0, 12); got != 0xabc {
		t.Fatalf("neighbour clobbered: %#x", got)
	}
	// Full-width field.
	b2 := New(128)
	b2.PutUint(1, 64, ^uint64(0))
	if got := b2.Uint(1, 64); got != ^uint64(0) {
		t.Fatalf("64-bit field got %#x", got)
	}
}

func TestPutUintMasksValue(t *testing.T) {
	b := New(64)
	b.PutUint(0, 4, 0xff)
	if got := b.Uint(0, 4); got != 0xf {
		t.Fatalf("got %#x, want masked 0xf", got)
	}
	if got := b.Uint(4, 4); got != 0 {
		t.Fatalf("overflow into next field: %#x", got)
	}
}

func TestFieldBounds(t *testing.T) {
	b := New(64)
	for _, c := range []struct{ pos, width int }{
		{-1, 4}, {0, 0}, {0, 65}, {61, 4}, {64, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("pos=%d width=%d did not panic", c.pos, c.width)
				}
			}()
			b.PutUint(c.pos, c.width, 1)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Uint pos=%d width=%d did not panic", c.pos, c.width)
				}
			}()
			b.Uint(c.pos, c.width)
		}()
	}
}

func TestFieldsAsPackedArray(t *testing.T) {
	// Use Bits as a packed array of 1000 11-bit values.
	const n, w = 1000, 11
	b := New(n * w)
	for i := 0; i < n; i++ {
		b.PutUint(i*w, w, uint64(i*7)%(1<<w))
	}
	for i := 0; i < n; i++ {
		if got := b.Uint(i*w, w); got != uint64(i*7)%(1<<w) {
			t.Fatalf("slot %d: got %d", i, got)
		}
	}
}

func TestFieldsQuick(t *testing.T) {
	prop := func(vals []uint16, widthRaw uint8) bool {
		w := int(widthRaw)%16 + 1
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 200 {
			vals = vals[:200]
		}
		b := New(len(vals) * w)
		mask := uint64(1)<<uint(w) - 1
		for i, v := range vals {
			b.PutUint(i*w, w, uint64(v))
		}
		for i, v := range vals {
			if b.Uint(i*w, w) != uint64(v)&mask {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
