package hashing

// Mix64 is the splitmix64 finalizer: a fast, high-quality bijective mixer
// over 64-bit values. It is used for all integer-key derivations on the hot
// path (bucket index, fingerprint, alternate bucket, chain successor).
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Salt precomputes the mixing constant Key64 derives from a salt:
// Key64(key, salt) == Mix64(key ^ Salt(salt)). Batched kernels hoist it
// out of their per-key loops (it depends only on the filter's seed).
func Salt(salt uint64) uint64 {
	return Mix64(salt ^ 0x9e3779b97f4a7c15)
}

// Key64 hashes a 64-bit key under a salt. Different salts give effectively
// independent hash functions of the same key.
func Key64(key, salt uint64) uint64 {
	return Mix64(key ^ Salt(salt))
}

// Combine mixes two 64-bit values into one, order-sensitively.
func Combine(a, b uint64) uint64 {
	return Mix64(a ^ Mix64(b^0xd1b54a32d192ed03))
}

// Combine3 mixes three 64-bit values into one, order-sensitively. It is used
// to derive chain successors from (pair, fingerprint, cycle salt).
func Combine3(a, b, c uint64) uint64 {
	return Combine(Combine(a, b), c)
}
