// Package hashing provides the hash functions used throughout the
// conditional cuckoo filter implementation.
//
// The byte-string hash is Bob Jenkins' lookup3 (hashlittle2), the same
// function used by the original cuckoo filter paper and by the CCF paper's
// reference implementation (§10.8). For the hot paths that hash fixed-width
// integer keys we additionally provide cheap 64-bit mixers derived from
// splitmix64; all derived quantities (bucket index, fingerprint, alternate
// bucket, chain successor) are obtained from independently salted mixes.
package hashing

import "encoding/binary"

// rot32 rotates x left by k bits.
func rot32(x uint32, k uint) uint32 { return x<<k | x>>(32-k) }

// jmix is lookup3's internal 96-bit mixing step.
func jmix(a, b, c uint32) (uint32, uint32, uint32) {
	a -= c
	a ^= rot32(c, 4)
	c += b
	b -= a
	b ^= rot32(a, 6)
	a += c
	c -= b
	c ^= rot32(b, 8)
	b += a
	a -= c
	a ^= rot32(c, 16)
	c += b
	b -= a
	b ^= rot32(a, 19)
	a += c
	c -= b
	c ^= rot32(b, 4)
	b += a
	return a, b, c
}

// jfinal is lookup3's final mixing of three 32-bit values into the result.
func jfinal(a, b, c uint32) (uint32, uint32, uint32) {
	c ^= b
	c -= rot32(b, 14)
	a ^= c
	a -= rot32(c, 11)
	b ^= a
	b -= rot32(a, 25)
	c ^= b
	c -= rot32(b, 16)
	a ^= c
	a -= rot32(c, 4)
	b ^= a
	b -= rot32(a, 14)
	c ^= b
	c -= rot32(b, 24)
	return a, b, c
}

// Lookup3 implements Jenkins' hashlittle2: it hashes key and returns two
// 32-bit values. seed1 and seed2 seed the two results; passing different
// seeds yields effectively independent hash functions.
func Lookup3(key []byte, seed1, seed2 uint32) (h1, h2 uint32) {
	length := len(key)
	a := 0xdeadbeef + uint32(length) + seed1
	b := a
	c := a + seed2

	i := 0
	for length-i > 12 {
		a += binary.LittleEndian.Uint32(key[i:])
		b += binary.LittleEndian.Uint32(key[i+4:])
		c += binary.LittleEndian.Uint32(key[i+8:])
		a, b, c = jmix(a, b, c)
		i += 12
	}

	tail := key[i:]
	switch len(tail) {
	case 12:
		c += binary.LittleEndian.Uint32(tail[8:])
		b += binary.LittleEndian.Uint32(tail[4:])
		a += binary.LittleEndian.Uint32(tail[0:])
	case 11:
		c += uint32(tail[10]) << 16
		fallthrough
	case 10:
		c += uint32(tail[9]) << 8
		fallthrough
	case 9:
		c += uint32(tail[8])
		fallthrough
	case 8:
		b += binary.LittleEndian.Uint32(tail[4:])
		a += binary.LittleEndian.Uint32(tail[0:])
	case 7:
		b += uint32(tail[6]) << 16
		fallthrough
	case 6:
		b += uint32(tail[5]) << 8
		fallthrough
	case 5:
		b += uint32(tail[4])
		fallthrough
	case 4:
		a += binary.LittleEndian.Uint32(tail[0:])
	case 3:
		a += uint32(tail[2]) << 16
		fallthrough
	case 2:
		a += uint32(tail[1]) << 8
		fallthrough
	case 1:
		a += uint32(tail[0])
	case 0:
		return c, b // zero-length strings require no mixing
	}
	_, b, c = jfinal(a, b, c)
	return c, b
}

// Lookup3String is Lookup3 over the bytes of s without copying semantics
// concerns for callers that hold strings.
func Lookup3String(s string, seed1, seed2 uint32) (uint32, uint32) {
	return Lookup3([]byte(s), seed1, seed2)
}

// Hash64 hashes an arbitrary byte string to a single 64-bit value using
// lookup3's two 32-bit outputs.
func Hash64(key []byte, seed uint64) uint64 {
	h1, h2 := Lookup3(key, uint32(seed), uint32(seed>>32))
	return uint64(h1)<<32 | uint64(h2)
}
