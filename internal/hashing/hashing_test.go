package hashing

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

// Reference vectors for lookup3 hashlittle2, generated from the canonical
// public-domain lookup3.c (driver5 in Jenkins' self-test produces the first
// vector; the others were produced by running hashlittle2 directly).
func TestLookup3KnownVectors(t *testing.T) {
	// hashlittle2("", 0, 0) must produce the documented constants for the
	// empty string: both outputs equal 0xdeadbeef.
	h1, h2 := Lookup3(nil, 0, 0)
	if h1 != 0xdeadbeef || h2 != 0xdeadbeef {
		t.Fatalf("empty string: got (%#x, %#x), want (0xdeadbeef, 0xdeadbeef)", h1, h2)
	}

	// With seeds (0, 0xdeadbeef) the empty string yields c=0xdeadbeef,
	// b=0xdeadbeef+0xdeadbeef (mod 2^32) per lookup3.c's own self-test notes.
	h1, h2 = Lookup3(nil, 0, 0xdeadbeef)
	if h1 != 0xbd5b7dde {
		t.Fatalf("empty string seed2=deadbeef: got h1=%#x, want 0xbd5b7dde", h1)
	}
	if h2 != 0xdeadbeef {
		t.Fatalf("empty string seed2=deadbeef: got h2=%#x, want 0xdeadbeef", h2)
	}

	h1, h2 = Lookup3(nil, 0xdeadbeef, 0xdeadbeef)
	if h1 != 0x9c093ccd || h2 != 0xbd5b7dde {
		t.Fatalf("empty string both seeds: got (%#x, %#x), want (0x9c093ccd, 0xbd5b7dde)", h1, h2)
	}

	// "Four score and seven years ago" with zero seeds: hashlittle() result
	// is documented in lookup3.c comments as 0x17770551 with the first word.
	phrase := []byte("Four score and seven years ago")
	g1, _ := Lookup3(phrase, 0, 0)
	if g1 != 0x17770551 {
		t.Fatalf("phrase: got %#x, want 0x17770551", g1)
	}
	g1b, _ := Lookup3(phrase, 1, 0)
	if g1b != 0xcd628161 {
		t.Fatalf("phrase seed 1: got %#x, want 0xcd628161", g1b)
	}
}

func TestLookup3AllLengthsDeterministic(t *testing.T) {
	// Every tail length 0..32 must be handled; the function must be
	// deterministic and sensitive to each byte.
	buf := make([]byte, 33)
	for i := range buf {
		buf[i] = byte(i*37 + 11)
	}
	for n := 0; n <= 32; n++ {
		a1, a2 := Lookup3(buf[:n], 1, 2)
		b1, b2 := Lookup3(buf[:n], 1, 2)
		if a1 != b1 || a2 != b2 {
			t.Fatalf("len %d: non-deterministic", n)
		}
		if n == 0 {
			continue
		}
		// Flip one byte: result should change (overwhelmingly likely).
		mod := make([]byte, n)
		copy(mod, buf[:n])
		mod[n/2] ^= 0xff
		c1, c2 := Lookup3(mod, 1, 2)
		if c1 == a1 && c2 == a2 {
			t.Fatalf("len %d: insensitive to byte flip", n)
		}
	}
}

func TestLookup3SeedIndependence(t *testing.T) {
	key := []byte("conditional cuckoo filter")
	a1, _ := Lookup3(key, 0, 0)
	b1, _ := Lookup3(key, 1, 0)
	c1, _ := Lookup3(key, 0, 1)
	if a1 == b1 || a1 == c1 || b1 == c1 {
		t.Fatalf("seeds do not separate results: %#x %#x %#x", a1, b1, c1)
	}
}

func TestLookup3StringMatchesBytes(t *testing.T) {
	s := "movie_companies.company_type_id"
	a1, a2 := Lookup3String(s, 7, 9)
	b1, b2 := Lookup3([]byte(s), 7, 9)
	if a1 != b1 || a2 != b2 {
		t.Fatalf("string/bytes mismatch")
	}
}

func TestHash64Distribution(t *testing.T) {
	// Crude avalanche test: hashing consecutive integers should set each
	// output bit roughly half the time.
	const n = 4096
	var counts [64]int
	var b [8]byte
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(b[:], uint64(i))
		h := Hash64(b[:], 42)
		for bit := 0; bit < 64; bit++ {
			if h>>uint(bit)&1 == 1 {
				counts[bit]++
			}
		}
	}
	for bit, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.5) > 0.08 {
			t.Fatalf("bit %d set fraction %.3f, want ~0.5", bit, frac)
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	// splitmix64's finalizer is a bijection; sampled collisions indicate a
	// transcription bug.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip ~32 output bits on average.
	var totalFlips, samples int
	for i := uint64(1); i < 1024; i++ {
		base := Mix64(i)
		for bit := uint(0); bit < 64; bit += 8 {
			d := Mix64(i ^ 1<<bit)
			totalFlips += popcount(base ^ d)
			samples++
		}
	}
	avg := float64(totalFlips) / float64(samples)
	if avg < 28 || avg > 36 {
		t.Fatalf("avalanche average %.2f bits, want ~32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestKey64SaltIndependence(t *testing.T) {
	if Key64(12345, 1) == Key64(12345, 2) {
		t.Fatal("salts 1 and 2 collide on the same key")
	}
	if Key64(1, 7) == Key64(2, 7) {
		t.Fatal("keys 1 and 2 collide under the same salt")
	}
}

func TestCombineOrderSensitive(t *testing.T) {
	if Combine(1, 2) == Combine(2, 1) {
		t.Fatal("Combine must be order-sensitive")
	}
	if Combine3(1, 2, 3) == Combine3(3, 2, 1) {
		t.Fatal("Combine3 must be order-sensitive")
	}
}

func TestLookup3QuickDeterminism(t *testing.T) {
	f := func(data []byte, s1, s2 uint32) bool {
		a1, a2 := Lookup3(data, s1, s2)
		b1, b2 := Lookup3(data, s1, s2)
		return a1 == b1 && a2 == b2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLookup3PrefixFree(t *testing.T) {
	// Appending a byte must change the hash (prefix sensitivity), sampled.
	f := func(data []byte) bool {
		if len(data) > 64 {
			data = data[:64]
		}
		a1, a2 := Lookup3(data, 3, 4)
		ext := append(append([]byte(nil), data...), 0x5a)
		b1, b2 := Lookup3(ext, 3, 4)
		return a1 != b1 || a2 != b2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
