package cuckoo

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, capacity int, opt Options) *Filter {
	t.Helper()
	f, err := New(capacity, opt)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(10, Options{FingerprintBits: 17}); err == nil {
		t.Fatal("fp bits 17 should error")
	}
	if _, err := New(10, Options{BucketSize: -1}); err == nil {
		t.Fatal("negative bucket size should error")
	}
	f := mustNew(t, 10, Options{})
	if f.FingerprintBits() != 12 || f.BucketSize() != 4 {
		t.Fatalf("defaults wrong: |κ|=%d b=%d", f.FingerprintBits(), f.BucketSize())
	}
}

func TestNoFalseNegatives(t *testing.T) {
	f := mustNew(t, 10000, Options{Seed: 1})
	for k := uint64(0); k < 10000; k++ {
		if err := f.Insert(k); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	for k := uint64(0); k < 10000; k++ {
		if !f.Contains(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
}

func TestFPRNearTheory(t *testing.T) {
	f := mustNew(t, 100000, Options{FingerprintBits: 12, Seed: 2})
	for k := uint64(0); k < 100000; k++ {
		if err := f.Insert(k); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	fp := 0
	const probes = 200000
	for k := uint64(0); k < probes; k++ {
		if f.Contains(k + 1<<40) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// Theory: ~2b·load·2^-12 ≈ 8·0.8·0.000244 ≈ 0.16%. Allow generous band.
	if rate > 0.01 {
		t.Fatalf("FPR %.5f too high for 12-bit fingerprints", rate)
	}
	est := f.ExpectedFPR()
	if rate > est*4+0.001 {
		t.Fatalf("measured FPR %.5f far above estimate %.5f", rate, est)
	}
}

func TestHighLoadFactor(t *testing.T) {
	// An optimally sized filter with b=4 empirically reaches ≈95% load (§4.2).
	opt := Options{BucketSize: 4, Seed: 3}
	f, err := NewRaw(1024, opt)
	if err != nil {
		t.Fatal(err)
	}
	inserted := 0
	for k := uint64(0); ; k++ {
		if err := f.Insert(k); err != nil {
			break
		}
		inserted++
	}
	lf := f.LoadFactor()
	if lf < 0.90 {
		t.Fatalf("load factor at first failure %.3f, want ≥ 0.90 for distinct keys", lf)
	}
	if inserted != f.Count() {
		t.Fatalf("count %d != inserted %d", f.Count(), inserted)
	}
}

func TestMultisetCap(t *testing.T) {
	// A single key can occupy at most 2b entries; the 2b+1-th copy fails
	// (§4.3 "there is a cap of 2b copies").
	f, err := NewRaw(64, Options{BucketSize: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	key := uint64(42)
	copies := 0
	for i := 0; i < 20; i++ {
		if err := f.Insert(key); err != nil {
			break
		}
		copies++
	}
	if copies > 8 {
		t.Fatalf("stored %d copies, cap should be 2b = 8", copies)
	}
	if copies < 4 {
		t.Fatalf("stored only %d copies; pair should hold at least b", copies)
	}
	if got := f.CountKey(key); got != copies {
		t.Fatalf("CountKey = %d, want %d", got, copies)
	}
}

func TestInsertUnique(t *testing.T) {
	f := mustNew(t, 100, Options{Seed: 5})
	added, err := f.InsertUnique(7)
	if err != nil || !added {
		t.Fatalf("first InsertUnique: added=%v err=%v", added, err)
	}
	added, err = f.InsertUnique(7)
	if err != nil || added {
		t.Fatalf("second InsertUnique: added=%v err=%v", added, err)
	}
	if f.Count() != 1 {
		t.Fatalf("Count = %d, want 1", f.Count())
	}
}

func TestDelete(t *testing.T) {
	f := mustNew(t, 100, Options{Seed: 6})
	for i := 0; i < 3; i++ {
		if err := f.Insert(9); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.CountKey(9); got != 3 {
		t.Fatalf("CountKey = %d, want 3", got)
	}
	for i := 3; i > 0; i-- {
		if !f.Delete(9) {
			t.Fatalf("delete %d failed", i)
		}
		if got := f.CountKey(9); got != i-1 {
			t.Fatalf("after delete CountKey = %d, want %d", got, i-1)
		}
	}
	if f.Delete(9) {
		t.Fatal("delete of absent key succeeded")
	}
	if f.Contains(9) {
		t.Fatal("key still present after all copies deleted")
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	f := mustNew(t, 1000, Options{Seed: 7})
	for k := uint64(0); k < 500; k++ {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 500; k += 2 {
		if !f.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	for k := uint64(1); k < 500; k += 2 {
		if !f.Contains(k) {
			t.Fatalf("false negative for retained key %d", k)
		}
	}
	for k := uint64(0); k < 500; k += 2 {
		if err := f.Insert(k); err != nil {
			t.Fatalf("reinsert %d: %v", k, err)
		}
	}
	if f.Count() != 500 {
		t.Fatalf("Count = %d, want 500", f.Count())
	}
}

func TestSizeBits(t *testing.T) {
	f, err := NewRaw(256, Options{FingerprintBits: 12, BucketSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.SizeBits(); got != 256*4*12 {
		t.Fatalf("SizeBits = %d, want %d", got, 256*4*12)
	}
}

func TestAltIndexInvolution(t *testing.T) {
	f := mustNew(t, 1000, Options{Seed: 8})
	for k := uint64(0); k < 1000; k++ {
		fp := f.fingerprint(k)
		i1 := f.index(k)
		i2 := f.altIndex(i1, fp)
		if f.altIndex(i2, fp) != i1 {
			t.Fatalf("altIndex not an involution for key %d", k)
		}
	}
}

func TestFingerprintNonZero(t *testing.T) {
	f := mustNew(t, 10, Options{FingerprintBits: 4, Seed: 9})
	for k := uint64(0); k < 100000; k++ {
		if f.fingerprint(k) == 0 {
			t.Fatalf("zero fingerprint for key %d", k)
		}
	}
}

func TestReset(t *testing.T) {
	f := mustNew(t, 100, Options{Seed: 10})
	for k := uint64(0); k < 50; k++ {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	f.Reset()
	if f.Count() != 0 || f.LoadFactor() != 0 {
		t.Fatal("reset did not clear")
	}
	if f.Contains(1) {
		t.Fatal("key survives reset")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := mustNew(t, 5000, Options{FingerprintBits: 9, BucketSize: 6, Seed: 11})
	for k := uint64(0); k < 5000; k++ {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Filter
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.Count() != f.Count() || g.NumBuckets() != f.NumBuckets() || g.FingerprintBits() != f.FingerprintBits() {
		t.Fatal("geometry or count lost in round trip")
	}
	for k := uint64(0); k < 5000; k++ {
		if !g.Contains(k) {
			t.Fatalf("false negative after round trip: %d", k)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var f Filter
	if err := f.UnmarshalBinary(nil); err == nil {
		t.Fatal("nil buffer should error")
	}
	if err := f.UnmarshalBinary(make([]byte, 40)); err == nil {
		t.Fatal("bad magic should error")
	}
	good := mustNew(t, 10, Options{})
	data, _ := good.MarshalBinary()
	if err := f.UnmarshalBinary(data[:len(data)-2]); err == nil {
		t.Fatal("truncated buffer should error")
	}
}

func TestPropertyNoFalseNegativesUnderChurn(t *testing.T) {
	prop := func(keys []uint64) bool {
		f, err := New(len(keys)*2+16, Options{Seed: 12})
		if err != nil {
			return false
		}
		live := map[uint64]int{}
		for i, k := range keys {
			if i%3 == 2 && live[k] > 0 {
				if !f.Delete(k) {
					return false
				}
				live[k]--
				continue
			}
			if err := f.Insert(k); err != nil {
				return false
			}
			live[k]++
		}
		for k, n := range live {
			if n > 0 && !f.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[uint32]uint32{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Fatalf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
