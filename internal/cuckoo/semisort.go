package cuckoo

// Semi-sorting (§4.2, following Fan et al.): within a bucket of b = 4
// entries, the 4-bit prefixes of the fingerprints carry no order
// information, so sorting them reduces the bucket's entropy. A sorted
// multiset of four nibbles has C(16+4−1, 4) = 3876 states, which fits in 12
// bits instead of 16 — saving one bit per entry. The paper uses this in its
// bit-efficiency comparison: semi-sorted cuckoo filters need
// (log₂(1/ρ)+2)/α bits per item instead of (log₂(1/ρ)+3)/α.
//
// This file implements the real codec: an index over the 3876 sorted
// multisets, plus bucket encode/decode used by the SemiSort accessors of
// Filter. It is exact — EncodeBucket followed by DecodeBucket returns the
// bucket's fingerprints up to order.

const (
	semiSortBucket  = 4  // the codec is defined for b = 4, as in the paper
	semiSortNibbles = 16 // 4-bit prefixes
	// SemiSortStates is the number of sorted 4-nibble multisets,
	// C(16+4-1, 4) = 3876 ≤ 2^12.
	SemiSortStates = 3876
	// SemiSortCodeBits is the width of the encoded prefix block.
	SemiSortCodeBits = 12
)

// semiSortTables holds the bidirectional mapping between sorted nibble
// quadruples and their dense codes, built once at package init.
var semiSortTables = buildSemiSortTables()

type semiSortCodec struct {
	toCode   map[[semiSortBucket]uint8]uint16
	fromCode [][semiSortBucket]uint8
}

func buildSemiSortTables() *semiSortCodec {
	c := &semiSortCodec{
		toCode: make(map[[semiSortBucket]uint8]uint16, SemiSortStates),
	}
	// Enumerate non-decreasing quadruples (a ≤ b ≤ c ≤ d) in
	// lexicographic order; the index is the code.
	for a := 0; a < semiSortNibbles; a++ {
		for b := a; b < semiSortNibbles; b++ {
			for cc := b; cc < semiSortNibbles; cc++ {
				for d := cc; d < semiSortNibbles; d++ {
					q := [semiSortBucket]uint8{uint8(a), uint8(b), uint8(cc), uint8(d)}
					c.toCode[q] = uint16(len(c.fromCode))
					c.fromCode = append(c.fromCode, q)
				}
			}
		}
	}
	if len(c.fromCode) != SemiSortStates {
		panic("cuckoo: semi-sort state count mismatch")
	}
	return c
}

// EncodeBucket encodes four fingerprints of fpBits each into a semi-sorted
// block: a 12-bit code for the sorted 4-bit prefixes followed by the
// fingerprint suffixes in prefix-sorted order. Empty slots are encoded as
// fingerprint 0 (its prefix and suffix are zero). The returned value packs
// the block little-endian: code in the low 12 bits, then the suffixes.
func EncodeBucket(fps [4]uint16, fpBits int) uint64 {
	suffixBits := fpBits - 4
	suffixMask := uint16(1<<suffixBits - 1)
	type pair struct{ prefix, suffix uint16 }
	var ps [4]pair
	for i, fp := range fps {
		ps[i] = pair{prefix: fp >> uint(suffixBits), suffix: fp & suffixMask}
	}
	// Insertion sort by (prefix, suffix) for a canonical order.
	for i := 1; i < 4; i++ {
		for j := i; j > 0; j-- {
			if ps[j].prefix < ps[j-1].prefix ||
				(ps[j].prefix == ps[j-1].prefix && ps[j].suffix < ps[j-1].suffix) {
				ps[j], ps[j-1] = ps[j-1], ps[j]
			}
		}
	}
	var q [semiSortBucket]uint8
	for i := range ps {
		q[i] = uint8(ps[i].prefix)
	}
	code, ok := semiSortTables.toCode[q]
	if !ok {
		panic("cuckoo: unsortable prefix quadruple")
	}
	out := uint64(code)
	shift := uint(SemiSortCodeBits)
	for i := range ps {
		out |= uint64(ps[i].suffix) << shift
		shift += uint(suffixBits)
	}
	return out
}

// DecodeBucket reverses EncodeBucket, returning the four fingerprints in
// canonical sorted order.
func DecodeBucket(block uint64, fpBits int) [4]uint16 {
	suffixBits := fpBits - 4
	suffixMask := uint64(1<<suffixBits - 1)
	code := uint16(block & (1<<SemiSortCodeBits - 1))
	q := semiSortTables.fromCode[code]
	var out [4]uint16
	shift := uint(SemiSortCodeBits)
	for i := 0; i < 4; i++ {
		suffix := uint16(block >> shift & suffixMask)
		out[i] = uint16(q[i])<<uint(suffixBits) | suffix
		shift += uint(suffixBits)
	}
	return out
}

// SemiSortedBlockBits returns the size of one encoded bucket:
// 12 + 4·(|κ|−4) bits, versus 4·|κ| unencoded — one bit saved per entry.
func SemiSortedBlockBits(fpBits int) int {
	return SemiSortCodeBits + semiSortBucket*(fpBits-4)
}

// SemiSortedSizeBits returns the filter's size under semi-sorted bucket
// encoding. It requires b = 4 and |κ| ≥ 5 (the paper's configuration);
// other geometries return the plain packed size.
func (f *Filter) SemiSortedSizeBits() int64 {
	if f.b != semiSortBucket || f.fpBits < 5 {
		return f.SizeBits()
	}
	return int64(f.m) * int64(SemiSortedBlockBits(f.fpBits))
}

// SemiSortedSnapshot encodes every bucket and returns the packed blocks.
// The snapshot is a storage format: decode with DecodeBucket. It requires
// b = 4 and |κ| ≥ 5.
func (f *Filter) SemiSortedSnapshot() ([]uint64, bool) {
	if f.b != semiSortBucket || f.fpBits < 5 {
		return nil, false
	}
	blocks := make([]uint64, f.m)
	for bkt := uint32(0); bkt < f.m; bkt++ {
		var fps [4]uint16
		copy(fps[:], f.fps[int(bkt)*f.b:int(bkt)*f.b+4])
		blocks[bkt] = EncodeBucket(fps, f.fpBits)
	}
	return blocks, true
}

// LoadSemiSortedSnapshot replaces the filter's buckets with the decoded
// contents of blocks, which must have been produced by SemiSortedSnapshot
// on a filter with identical geometry.
func (f *Filter) LoadSemiSortedSnapshot(blocks []uint64) bool {
	if f.b != semiSortBucket || f.fpBits < 5 || len(blocks) != int(f.m) {
		return false
	}
	count := 0
	for bkt, block := range blocks {
		fps := DecodeBucket(block, f.fpBits)
		for j := 0; j < 4; j++ {
			f.fps[bkt*4+j] = fps[j]
			if fps[j] != 0 {
				count++
			}
		}
	}
	f.count = count
	return true
}
