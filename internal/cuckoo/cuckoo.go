// Package cuckoo implements a standard cuckoo filter (Fan, Andersen,
// Kaminsky, Mitzenmacher 2014) with partial-key cuckoo hashing, packed
// fingerprints, deletion, and multiset insertion (§4.2–4.3 of the CCF
// paper).
//
// It is the "Cuckoo Filter" baseline of the paper's evaluation: a pre-built
// approximate set-membership filter that knows keys but nothing about
// predicates (Figures 4, 6b, 6d), and the "plain" multiset filter whose
// load factor collapses under duplicate keys (Figure 4).
package cuckoo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"ccf/internal/hashing"
)

// Salt names for the independent hash functions derived from the seed.
const (
	saltIndex = 0x1db3
	saltFp    = 0x9f4b
	saltAlt   = 0x5c71
)

// ErrFull is returned when an insertion fails after MaxKicks displacements.
var ErrFull = errors.New("cuckoo: filter full")

// Options configures a Filter. Zero values select the paper's defaults:
// 12-bit fingerprints, 4 entries per bucket, 500 kicks.
type Options struct {
	// FingerprintBits is |κ|, the key fingerprint width in bits (1–16).
	FingerprintBits int
	// BucketSize is b, the number of entries per bucket.
	BucketSize int
	// MaxKicks bounds the displacement chain during insertion.
	MaxKicks int
	// Seed makes hash salts and kick choices deterministic.
	Seed uint64
}

func (o *Options) setDefaults() error {
	if o.FingerprintBits == 0 {
		o.FingerprintBits = 12
	}
	if o.FingerprintBits < 1 || o.FingerprintBits > 16 {
		return fmt.Errorf("cuckoo: fingerprint bits %d outside [1,16]", o.FingerprintBits)
	}
	if o.BucketSize == 0 {
		o.BucketSize = 4
	}
	if o.BucketSize < 1 {
		return fmt.Errorf("cuckoo: bucket size %d < 1", o.BucketSize)
	}
	if o.MaxKicks == 0 {
		o.MaxKicks = 500
	}
	return nil
}

// Filter is a cuckoo filter over 64-bit keys. Fingerprints are stored packed
// in a flat array of m·b entries; fingerprint 0 marks an empty slot.
type Filter struct {
	fps      []uint16
	m        uint32 // number of buckets, a power of two
	mask     uint32
	b        int
	fpBits   int
	fpMask   uint16
	maxKicks int
	seed     uint64
	rng      *rand.Rand
	count    int // occupied entries
}

// New returns a filter sized to hold capacity entries at a ~95% target load
// factor (the paper's empirical optimum for b = 4).
func New(capacity int, opt Options) (*Filter, error) {
	if err := opt.setDefaults(); err != nil {
		return nil, err
	}
	if capacity < 1 {
		capacity = 1
	}
	buckets := nextPow2(uint32((capacity + opt.BucketSize - 1) / opt.BucketSize * 100 / 95))
	return NewRaw(buckets, opt)
}

// NewRaw returns a filter with exactly buckets buckets (rounded up to a
// power of two). Most callers should use New.
func NewRaw(buckets uint32, opt Options) (*Filter, error) {
	if err := opt.setDefaults(); err != nil {
		return nil, err
	}
	m := nextPow2(buckets)
	f := &Filter{
		fps:      make([]uint16, int(m)*opt.BucketSize),
		m:        m,
		mask:     m - 1,
		b:        opt.BucketSize,
		fpBits:   opt.FingerprintBits,
		fpMask:   uint16(1<<opt.FingerprintBits - 1),
		maxKicks: opt.MaxKicks,
		seed:     opt.Seed,
		rng:      rand.New(rand.NewSource(int64(opt.Seed) ^ 0x6a09e667)),
	}
	return f, nil
}

func nextPow2(v uint32) uint32 {
	if v == 0 {
		return 1
	}
	v--
	v |= v >> 1
	v |= v >> 2
	v |= v >> 4
	v |= v >> 8
	v |= v >> 16
	return v + 1
}

// fingerprint maps a key to a nonzero |κ|-bit fingerprint.
func (f *Filter) fingerprint(key uint64) uint16 {
	fp := uint16(hashing.Key64(key, f.seed^saltFp)) & f.fpMask
	if fp == 0 {
		fp = 1
	}
	return fp
}

// index returns the key's primary bucket.
func (f *Filter) index(key uint64) uint32 {
	return uint32(hashing.Key64(key, f.seed^saltIndex)) & f.mask
}

// altIndex returns the partner bucket: ℓ′ = ℓ ⊕ h(κ). The XOR makes the
// mapping an involution, so the partner of the partner is the original.
func (f *Filter) altIndex(i uint32, fp uint16) uint32 {
	return i ^ (uint32(hashing.Key64(uint64(fp), f.seed^saltAlt)) & f.mask)
}

func (f *Filter) slot(bucket uint32, j int) *uint16 {
	return &f.fps[int(bucket)*f.b+j]
}

// insertIntoBucket places fp in an empty slot of bucket, if any.
func (f *Filter) insertIntoBucket(bucket uint32, fp uint16) bool {
	for j := 0; j < f.b; j++ {
		s := f.slot(bucket, j)
		if *s == 0 {
			*s = fp
			f.count++
			return true
		}
	}
	return false
}

// Insert adds one copy of key. Duplicate keys occupy additional entries
// (multiset semantics, §4.3); at most 2b copies can ever fit.
func (f *Filter) Insert(key uint64) error {
	fp := f.fingerprint(key)
	i1 := f.index(key)
	return f.insertFp(fp, i1)
}

func (f *Filter) insertFp(fp uint16, i1 uint32) error {
	i2 := f.altIndex(i1, fp)
	if f.insertIntoBucket(i1, fp) || f.insertIntoBucket(i2, fp) {
		return nil
	}
	// Kick loop: displace a random resident and relocate it to its own
	// alternate bucket; the displaced entry always stays within its pair.
	cur := i1
	if f.rng.Intn(2) == 1 {
		cur = i2
	}
	for k := 0; k < f.maxKicks; k++ {
		j := f.rng.Intn(f.b)
		s := f.slot(cur, j)
		fp, *s = *s, fp
		cur = f.altIndex(cur, fp)
		if f.insertIntoBucket(cur, fp) {
			return nil
		}
	}
	return ErrFull
}

// InsertUnique adds key only if no copy is already present. It reports
// whether a new entry was added.
func (f *Filter) InsertUnique(key uint64) (bool, error) {
	if f.Contains(key) {
		return false, nil
	}
	if err := f.Insert(key); err != nil {
		return false, err
	}
	return true, nil
}

// Contains reports whether key may be in the filter. False means definitely
// absent.
func (f *Filter) Contains(key uint64) bool {
	fp := f.fingerprint(key)
	i1 := f.index(key)
	i2 := f.altIndex(i1, fp)
	return f.bucketHas(i1, fp) || f.bucketHas(i2, fp)
}

func (f *Filter) bucketHas(bucket uint32, fp uint16) bool {
	base := int(bucket) * f.b
	for j := 0; j < f.b; j++ {
		if f.fps[base+j] == fp {
			return true
		}
	}
	return false
}

// CountKey returns the number of stored copies matching key's fingerprint
// in its bucket pair.
func (f *Filter) CountKey(key uint64) int {
	fp := f.fingerprint(key)
	i1 := f.index(key)
	i2 := f.altIndex(i1, fp)
	n := f.bucketCount(i1, fp)
	if i2 != i1 {
		n += f.bucketCount(i2, fp)
	}
	return n
}

func (f *Filter) bucketCount(bucket uint32, fp uint16) int {
	base := int(bucket) * f.b
	n := 0
	for j := 0; j < f.b; j++ {
		if f.fps[base+j] == fp {
			n++
		}
	}
	return n
}

// Delete removes one copy of key if present, enabling the multiset deletion
// the paper contrasts with Bloom filters (§4.3). Deleting a key that was
// never inserted may remove a colliding entry, as in all cuckoo filters.
func (f *Filter) Delete(key uint64) bool {
	fp := f.fingerprint(key)
	i1 := f.index(key)
	i2 := f.altIndex(i1, fp)
	if f.deleteFromBucket(i1, fp) {
		return true
	}
	if i2 != i1 && f.deleteFromBucket(i2, fp) {
		return true
	}
	return false
}

func (f *Filter) deleteFromBucket(bucket uint32, fp uint16) bool {
	for j := 0; j < f.b; j++ {
		s := f.slot(bucket, j)
		if *s == fp {
			*s = 0
			f.count--
			return true
		}
	}
	return false
}

// Count returns the number of occupied entries.
func (f *Filter) Count() int { return f.count }

// NumBuckets returns m.
func (f *Filter) NumBuckets() uint32 { return f.m }

// BucketSize returns b.
func (f *Filter) BucketSize() int { return f.b }

// FingerprintBits returns |κ|.
func (f *Filter) FingerprintBits() int { return f.fpBits }

// Capacity returns the total number of entry slots, m·b.
func (f *Filter) Capacity() int { return int(f.m) * f.b }

// LoadFactor returns the fraction of occupied entries.
func (f *Filter) LoadFactor() float64 {
	return float64(f.count) / float64(f.Capacity())
}

// SizeBits returns the packed size in bits: m·b·|κ|, the paper's size
// accounting for cuckoo filters.
func (f *Filter) SizeBits() int64 {
	return int64(f.Capacity()) * int64(f.fpBits)
}

// ExpectedFPR returns the union-bound FPR estimate for key-only queries,
// ρ = E[D]·2^(−|κ|) (Eq. 4), using the realized average number of filled
// entries per bucket pair.
func (f *Filter) ExpectedFPR() float64 {
	meanFilledPerPair := f.LoadFactor() * float64(2*f.b)
	return meanFilledPerPair / float64(uint32(1)<<f.fpBits)
}

// Reset clears the filter.
func (f *Filter) Reset() {
	for i := range f.fps {
		f.fps[i] = 0
	}
	f.count = 0
}

const marshalMagic = 0x43554b46 // "CUKF"

// MarshalBinary encodes the filter, preserving geometry and contents so a
// pre-built filter can be stored and shipped (§3).
func (f *Filter) MarshalBinary() ([]byte, error) {
	out := make([]byte, 40+2*len(f.fps))
	binary.LittleEndian.PutUint32(out[0:], marshalMagic)
	binary.LittleEndian.PutUint32(out[4:], f.m)
	binary.LittleEndian.PutUint32(out[8:], uint32(f.b))
	binary.LittleEndian.PutUint32(out[12:], uint32(f.fpBits))
	binary.LittleEndian.PutUint32(out[16:], uint32(f.maxKicks))
	binary.LittleEndian.PutUint64(out[20:], f.seed)
	binary.LittleEndian.PutUint32(out[28:], uint32(f.count))
	// out[32:40] reserved.
	for i, fp := range f.fps {
		binary.LittleEndian.PutUint16(out[40+2*i:], fp)
	}
	return out, nil
}

// UnmarshalBinary decodes a filter produced by MarshalBinary.
func (f *Filter) UnmarshalBinary(data []byte) error {
	if len(data) < 40 {
		return errors.New("cuckoo: short buffer")
	}
	if binary.LittleEndian.Uint32(data) != marshalMagic {
		return errors.New("cuckoo: bad magic")
	}
	m := binary.LittleEndian.Uint32(data[4:])
	b := int(binary.LittleEndian.Uint32(data[8:]))
	fpBits := int(binary.LittleEndian.Uint32(data[12:]))
	if m == 0 || m&(m-1) != 0 || b < 1 || fpBits < 1 || fpBits > 16 {
		return errors.New("cuckoo: corrupt header")
	}
	n := int(m) * b
	if len(data) != 40+2*n {
		return fmt.Errorf("cuckoo: buffer length %d does not match geometry", len(data))
	}
	f.m = m
	f.mask = m - 1
	f.b = b
	f.fpBits = fpBits
	f.fpMask = uint16(1<<fpBits - 1)
	f.maxKicks = int(binary.LittleEndian.Uint32(data[16:]))
	f.seed = binary.LittleEndian.Uint64(data[20:])
	f.count = int(binary.LittleEndian.Uint32(data[28:]))
	f.fps = make([]uint16, n)
	for i := range f.fps {
		f.fps[i] = binary.LittleEndian.Uint16(data[40+2*i:])
	}
	f.rng = rand.New(rand.NewSource(int64(f.seed) ^ 0x6a09e667))
	return nil
}
