package cuckoo

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestSemiSortTableSizes(t *testing.T) {
	if len(semiSortTables.fromCode) != SemiSortStates {
		t.Fatalf("fromCode has %d states, want %d", len(semiSortTables.fromCode), SemiSortStates)
	}
	if len(semiSortTables.toCode) != SemiSortStates {
		t.Fatalf("toCode has %d states, want %d", len(semiSortTables.toCode), SemiSortStates)
	}
	if SemiSortStates > 1<<SemiSortCodeBits {
		t.Fatalf("%d states do not fit in %d bits", SemiSortStates, SemiSortCodeBits)
	}
}

func TestSemiSortCodesBijective(t *testing.T) {
	for code, q := range semiSortTables.fromCode {
		back, ok := semiSortTables.toCode[q]
		if !ok || int(back) != code {
			t.Fatalf("code %d round-trips to %d", code, back)
		}
		for i := 1; i < 4; i++ {
			if q[i] < q[i-1] {
				t.Fatalf("code %d quadruple %v not sorted", code, q)
			}
		}
	}
}

func TestEncodeDecodeBucketRoundTrip(t *testing.T) {
	prop := func(a, b, c, d uint16, bitsRaw uint8) bool {
		fpBits := int(bitsRaw)%12 + 5 // 5..16
		mask := uint16(1<<fpBits - 1)
		in := [4]uint16{a & mask, b & mask, c & mask, d & mask}
		block := EncodeBucket(in, fpBits)
		out := DecodeBucket(block, fpBits)
		// Round trip preserves the multiset of fingerprints.
		ins := append([]int(nil), int(in[0]), int(in[1]), int(in[2]), int(in[3]))
		outs := append([]int(nil), int(out[0]), int(out[1]), int(out[2]), int(out[3]))
		sort.Ints(ins)
		sort.Ints(outs)
		for i := range ins {
			if ins[i] != outs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSemiSortedBlockBits(t *testing.T) {
	// 12-bit fingerprints: 12 + 4·8 = 44 bits versus 48 unencoded.
	if got := SemiSortedBlockBits(12); got != 44 {
		t.Fatalf("block bits = %d, want 44", got)
	}
	// Exactly one bit saved per entry.
	for fpBits := 5; fpBits <= 16; fpBits++ {
		if SemiSortedBlockBits(fpBits) != 4*fpBits-4 {
			t.Fatalf("|κ|=%d: saved bits != 4", fpBits)
		}
	}
}

func TestSemiSortedSizeBits(t *testing.T) {
	f, err := NewRaw(256, Options{FingerprintBits: 12, BucketSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	plain := f.SizeBits()
	ss := f.SemiSortedSizeBits()
	if ss >= plain {
		t.Fatalf("semi-sorted %d not below plain %d", ss, plain)
	}
	if ss != int64(256*44) {
		t.Fatalf("semi-sorted size = %d, want %d", ss, 256*44)
	}
	// Non-conforming geometry falls back to the plain size.
	g, err := NewRaw(64, Options{FingerprintBits: 12, BucketSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	if g.SemiSortedSizeBits() != g.SizeBits() {
		t.Fatal("b != 4 should fall back to plain size")
	}
	h, err := NewRaw(64, Options{FingerprintBits: 4, BucketSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if h.SemiSortedSizeBits() != h.SizeBits() {
		t.Fatal("|κ| = 4 should fall back to plain size")
	}
}

func TestSemiSortedSnapshotRoundTrip(t *testing.T) {
	f, err := New(4000, Options{FingerprintBits: 12, BucketSize: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 4000; k++ {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	blocks, ok := f.SemiSortedSnapshot()
	if !ok {
		t.Fatal("snapshot refused")
	}
	g, err := NewRaw(f.NumBuckets(), Options{FingerprintBits: 12, BucketSize: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !g.LoadSemiSortedSnapshot(blocks) {
		t.Fatal("load refused")
	}
	if g.Count() != f.Count() {
		t.Fatalf("count %d → %d across snapshot", f.Count(), g.Count())
	}
	for k := uint64(0); k < 4000; k++ {
		if !g.Contains(k) {
			t.Fatalf("false negative after semi-sorted round trip: %d", k)
		}
	}
	// Geometry mismatches are rejected.
	if g.LoadSemiSortedSnapshot(blocks[:10]) {
		t.Fatal("short snapshot accepted")
	}
	bad, err := NewRaw(16, Options{FingerprintBits: 12, BucketSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := bad.SemiSortedSnapshot(); ok {
		t.Fatal("b=6 snapshot accepted")
	}
}

func TestSemiSortMatchesPaperEfficiency(t *testing.T) {
	// §4.2 / §10.2: at ρ = 1% and β = 0.95 a semi-sorted filter needs
	// ≈(log2(1/ρ)+2)/β bits/item vs (log2(1/ρ)+3)/β unencoded. Validate
	// the implied bits/item of our encoding at those parameters.
	f, err := NewRaw(1024, Options{FingerprintBits: 12, BucketSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	items := int(float64(f.Capacity()) * 0.95)
	plainPerItem := float64(f.SizeBits()) / float64(items)
	ssPerItem := float64(f.SemiSortedSizeBits()) / float64(items)
	if ssPerItem >= plainPerItem {
		t.Fatal("semi-sorting saves nothing")
	}
	if diff := plainPerItem - ssPerItem; diff < 0.9 || diff > 1.2 {
		t.Fatalf("saving %.3f bits/item, want ≈1/β ≈ 1.05", diff)
	}
}
