package main

import (
	"fmt"
	"io"
	"sync"
	"time"

	"ccf/internal/core"
	"ccf/internal/shard"
)

// contendedReport measures the sharded filter's read-heavy contended
// throughput: N goroutines issuing batched probes with every 20th batch a
// batched insert (95/5), against both read paths — the optimistic seqlock
// and the PessimisticReads RLock baseline. It is the CLI form of
// BenchmarkShardedQueryBatchContended, for quick before/after checks
// without the testing harness.
func contendedReport(w io.Writer, seed uint64, clients int) error {
	const (
		batch     = 1024
		nKeys     = 1 << 15
		batchesPR = 2000 // per client per run
	)
	keys := make([]uint64, nKeys)
	attrs := make([][]uint64, nKeys)
	for i := range keys {
		keys[i] = uint64(i)*2654435761 + seed
		attrs[i] = []uint64{uint64(i % 11), uint64(i % 3)}
	}
	pred := core.And(core.Eq(0, 3))

	printMachineContext(w)
	fmt.Fprintf(w, "%-10s %8s %8s %12s %14s   (%d clients, 95/5 read/write, batch %d)\n",
		"path", "shards", "", "ns/key", "keys/s", clients, batch)
	for _, shards := range []int{1, 4} {
		for _, mode := range []struct {
			name        string
			pessimistic bool
		}{{"seqlock", false}, {"rlock", true}} {
			s, err := shard.New(shard.Options{
				Shards: shards, Workers: 1, PessimisticReads: mode.pessimistic,
				Params: core.Params{NumAttrs: 2, Capacity: 1 << 17, Seed: seed},
			})
			if err != nil {
				return err
			}
			for i, err := range s.InsertBatch(keys, attrs) {
				if err != nil {
					return fmt.Errorf("preload %d: %w", i, err)
				}
			}
			var wg sync.WaitGroup
			start := time.Now()
			for c := 0; c < clients; c++ {
				c := c
				wg.Add(1)
				go func() {
					defer wg.Done()
					out := make([]bool, 0, batch)
					errs := make([]error, 0, batch)
					wkeys := make([]uint64, batch)
					wattrs := make([][]uint64, batch)
					for i := range wattrs {
						wattrs[i] = []uint64{uint64(i % 11), 9}
					}
					next := 0
					for i := 0; i < batchesPR; i++ {
						if i%20 == 19 {
							for j := range wkeys {
								// Bounded churn range, disjoint from the
								// preloaded keys; re-inserts deduplicate but
								// still take the write lock.
								wkeys[j] = uint64(1)<<40 + uint64(c)<<32 + uint64(next%(nKeys/2))
								next++
							}
							errs = s.InsertBatchInto(errs[:0], wkeys, wattrs)
						} else {
							lo := (i * batch * (c + 1)) % (nKeys - batch)
							out = s.QueryBatchInto(out[:0], keys[lo:lo+batch], pred)
						}
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			totalKeys := clients * batchesPR * batch
			nsPerKey := float64(elapsed.Nanoseconds()) / float64(totalKeys)
			fmt.Fprintf(w, "%-10s %8d %8s %12.2f %14.0f\n",
				mode.name, shards, "", nsPerKey, 1e9/nsPerKey)
		}
	}
	return nil
}
