package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// protoRecord is the slice of a BENCH_serve.json record the protocol
// report needs; the daemon passes are written by `ccfd bench` with
// -protocols.
type protoRecord struct {
	Op        string  `json:"op"`
	Impl      string  `json:"impl"`
	Protocol  string  `json:"protocol"`
	Transport string  `json:"transport"`
	Shards    int     `json:"shards"`
	Batch     int     `json:"batch"`
	Cores     int     `json:"cores"`
	NsPerOp   float64 `json:"ns_per_op"`
	QPS       float64 `json:"qps"`
}

// protocolReport reads a BENCH_serve.json and prints the daemon
// protocol passes: per-key cost of the same query workload as JSON over
// HTTP versus binary frames over HTTP and raw TCP, with each row's
// speedup against the JSON baseline at the same batch size. The ×
// column is the wire format's headline: how much of the daemon tax was
// serialization rather than serving.
func protocolReport(w io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var records []protoRecord
	if err := json.Unmarshal(data, &records); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var rows []protoRecord
	base := map[int]float64{} // batch → json/http ns/key
	for _, r := range records {
		if r.Protocol == "" {
			continue
		}
		rows = append(rows, r)
		if r.Protocol == "json" {
			base[r.Batch] = r.NsPerOp
		}
	}
	if len(rows) == 0 {
		return fmt.Errorf("%s: no protocol records (run `ccfd bench` with -protocols)", path)
	}
	warnSingleCore(w, data)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Batch != rows[j].Batch {
			return rows[i].Batch < rows[j].Batch
		}
		return rows[i].NsPerOp > rows[j].NsPerOp
	})
	fmt.Fprintf(w, "%-9s %-14s %6s %7s %12s %14s %8s\n",
		"protocol", "transport", "batch", "shards", "ns/key", "qps", "vs json")
	for _, r := range rows {
		speedup := "-"
		if b, ok := base[r.Batch]; ok && r.NsPerOp > 0 {
			speedup = fmt.Sprintf("%.2fx", b/r.NsPerOp)
		}
		fmt.Fprintf(w, "%-9s %-14s %6d %7d %12.1f %14.0f %8s\n",
			r.Protocol, r.Transport, r.Batch, r.Shards, r.NsPerOp, r.QPS, speedup)
	}
	return nil
}

// warnSingleCore prints a banner when every committed record came from a
// single-core host: the protocol and contention numbers then measure
// scheduling on one CPU, and the multi-core gap is not yet on record.
// It takes the raw BENCH_serve.json bytes so every report command can
// share it regardless of which record slice it parses.
func warnSingleCore(w io.Writer, data []byte) {
	var records []struct {
		Cores int `json:"cores"`
	}
	if json.Unmarshal(data, &records) != nil || len(records) == 0 {
		return
	}
	max := 0
	for _, r := range records {
		if r.Cores > max {
			max = r.Cores
		}
	}
	if max <= 1 {
		fmt.Fprintf(w, "WARNING: every committed record is from a 1-core host; "+
			"concurrency and protocol deltas understate multi-core behavior — "+
			"re-run `ccfd bench` on a >=4-core machine and commit the records\n")
	}
}
