package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"ccf/internal/obs"
)

// requiredFamilies are the metric families a healthy durable ccfd must
// expose — one per instrumented layer. CI's obs-smoke fails when any is
// missing, so a refactor cannot silently drop a layer's instrumentation.
var requiredFamilies = []string{
	"ccfd_http_requests_total",        // server
	"ccfd_http_request_seconds",       // server latency
	"ccfd_insert_rows_total",          // row-status accounting
	"ccfd_wal_append_bytes_total",     // store WAL
	"ccfd_wal_fsync_seconds",          // store fsync latency
	"ccfd_folds_scheduled_total",      // fold scheduling
	"ccfd_recovery_filters",           // boot recovery
	"ccfd_probe_engine_info",          // active batch probe kernel
	"ccfd_traces_slow_total",          // flight recorder
	"ccfd_trace_phase_seconds",        // per-phase latency attribution
	"ccfd_requests_by_protocol_total", // wire-vs-JSON traffic split
	"ccfd_wire_request_seconds",       // raw-TCP wire latency
	"ccfd_wire_requests_total",        // raw-TCP wire outcomes by class
}

// validateMetrics scrapes url, checks the body is well-formed Prometheus
// text exposition, and checks every required family is present.
func validateMetrics(w io.Writer, url string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if err := obs.ValidateExposition(string(body)); err != nil {
		return fmt.Errorf("%s: malformed exposition: %w", url, err)
	}
	var missing []string
	for _, fam := range requiredFamilies {
		if !strings.Contains(string(body), "# TYPE "+fam+" ") {
			missing = append(missing, fam)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s: missing families: %s", url, strings.Join(missing, ", "))
	}
	lines := strings.Count(string(body), "\n")
	fmt.Fprintf(w, "ccfbench: %s: valid exposition, %d lines, all %d required families present\n",
		url, lines, len(requiredFamilies))
	return nil
}
