// Command ccfbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ccfbench [-scale 0.01] [-seed 1] [-runs 5] [-quick] <experiment>...
//	ccfbench -allocs
//	ccfbench -contended [-clients 4]
//	ccfbench -validate-metrics http://127.0.0.1:8437/metrics
//	ccfbench -trace-report BENCH_serve.json
//	ccfbench -overload-report BENCH_serve.json
//	ccfbench -protocol-report BENCH_serve.json
//	ccfbench -wire-check 127.0.0.1:8438 [-wire-http http://127.0.0.1:8437]
//
// Experiments: table1 table2 table3 fig2 fig3 fig4 fig5 fig6 fig7 fig8
// fig9 fig10 aggregate all. Output is printed as aligned text tables; see
// EXPERIMENTS.md for the recorded paper-versus-measured comparison.
//
// -allocs skips the experiments and prints the storage engine's hot-path
// latency and allocation report (ns/op, allocs/op, B/op for Query, Insert
// and the sharded QueryBatch), the machine-readable form of the packed
// engine's allocation-free contract.
//
// -contended prints the read-heavy contended serving report: N client
// goroutines at a 95/5 read/write batch mix through the sharded filter,
// via the optimistic seqlock read path and the RLock baseline.
//
// -validate-metrics scrapes a running daemon's /metrics endpoint and
// fails (exit 1) on malformed Prometheus exposition or a missing
// required metric family — CI's observability smoke check.
//
// -trace-report reads a BENCH_serve.json written by `ccfd bench` and
// prints the tracing pass's phase-attribution tables: per-request trace
// overhead, then each phase's count, total, p50 and p99.
//
// -overload-report reads the same file and prints the overload pass
// written by `ccfd bench overload`: goodput, shed rate and success
// latency tails under offered load past capacity, with admission
// control off versus on.
//
// -protocol-report reads the same file and prints the daemon protocol
// passes (`ccfd bench -protocols`): the per-key cost of JSON over HTTP
// versus binary frames over HTTP and raw TCP, with speedups against the
// JSON baseline. Every report warns when all committed records came
// from a single-core host.
//
// -wire-check round-trips the binary wire protocol against a running
// daemon's raw-TCP listener (insert, closed-loop query, pipelined
// queries) and optionally cross-checks the content-negotiated HTTP
// binary path — CI's wire-protocol smoke check.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ccf/internal/experiments"
	"ccf/internal/simd"
)

var runners = map[string]func(experiments.Config) error{
	"table1":    wrap(experiments.Table1),
	"table2":    wrap(experiments.Table2),
	"table3":    wrap(experiments.Table3),
	"fig2":      wrap(experiments.Fig2),
	"fig3":      wrap(experiments.Fig3),
	"fig4":      wrap(experiments.Fig4),
	"fig5":      wrap(experiments.Fig5),
	"fig6":      wrap(experiments.Fig6),
	"fig7":      wrap(experiments.Fig7),
	"fig8":      wrap(experiments.Fig8),
	"fig9":      wrap(experiments.Fig9),
	"fig10":     wrap(experiments.Fig10),
	"aggregate": wrap(experiments.Aggregate),
	"ablations": wrap(experiments.Ablations),
	"export":    wrap(experiments.ExportCounts),
}

// order fixes the sequence for "all".
var order = []string{
	"table2", "table3", "table1", "fig2", "fig3", "fig4", "fig5",
	"fig6", "fig7", "fig8", "fig9", "fig10", "aggregate", "ablations",
}

func wrap[T any](fn func(experiments.Config) (T, error)) func(experiments.Config) error {
	return func(cfg experiments.Config) error {
		_, err := fn(cfg)
		return err
	}
}

func main() {
	scale := flag.Float64("scale", 0.01, "synthetic IMDB scale factor in (0,1]")
	seed := flag.Int64("seed", 1, "random seed for data, workload and hashing")
	runs := flag.Int("runs", 5, "repetitions for the multiset experiments (paper: 20)")
	quick := flag.Bool("quick", false, "trim parameter grids for a fast pass")
	allocs := flag.Bool("allocs", false, "print the hot-path ns/op and allocs/op report and exit")
	contended := flag.Bool("contended", false, "print the contended read-path report (seqlock vs rlock) and exit")
	clients := flag.Int("clients", 4, "client goroutines for -contended")
	validateMetricsURL := flag.String("validate-metrics", "", "scrape this /metrics URL, fail on malformed exposition or missing families, and exit")
	traceReportPath := flag.String("trace-report", "", "print the phase-attribution report from this BENCH_serve.json and exit")
	overloadReportPath := flag.String("overload-report", "", "print the overload/admission-control report from this BENCH_serve.json and exit")
	protocolReportPath := flag.String("protocol-report", "", "print the JSON-vs-binary wire protocol report from this BENCH_serve.json and exit")
	wireCheckAddr := flag.String("wire-check", "", "round-trip the binary wire protocol against this host:port (raw TCP) and exit")
	wireCheckHTTP := flag.String("wire-http", "", "with -wire-check, also cross-check binary frames on this HTTP base URL (e.g. http://127.0.0.1:8437)")
	wireCheckFilter := flag.String("wire-filter", "smoke", "filter name for -wire-check")
	wireCheckAttrs := flag.Int("wire-attrs", 2, "attribute count of the -wire-check filter")
	probeEngine := flag.String("probe-engine", "auto", "batch probe engine: auto, scalar, or an explicit kernel name (avx2, neon)")
	flag.Usage = usage
	flag.Parse()

	if err := simd.SetEngine(*probeEngine); err != nil {
		fmt.Fprintf(os.Stderr, "ccfbench: %v\n", err)
		os.Exit(2)
	}

	if *validateMetricsURL != "" {
		if err := validateMetrics(os.Stdout, *validateMetricsURL); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *traceReportPath != "" {
		if err := traceReport(os.Stdout, *traceReportPath); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *overloadReportPath != "" {
		if err := overloadReport(os.Stdout, *overloadReportPath); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *protocolReportPath != "" {
		if err := protocolReport(os.Stdout, *protocolReportPath); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *wireCheckAddr != "" {
		if err := wireCheck(os.Stdout, *wireCheckAddr, *wireCheckHTTP, *wireCheckFilter, *wireCheckAttrs); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *allocs {
		if err := allocReport(os.Stdout, uint64(*seed)); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *contended {
		if err := contendedReport(os.Stdout, uint64(*seed), *clients); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = order
	}
	cfg := experiments.Config{
		Scale: *scale, Seed: *seed, Runs: *runs, Quick: *quick, W: os.Stdout,
	}
	for _, name := range args {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "ccfbench: unknown experiment %q\n", name)
			usage()
			os.Exit(2)
		}
		start := time.Now()
		if err := run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: ccfbench [flags] <experiment>...\n\nexperiments:\n")
	names := make([]string, 0, len(runners))
	for n := range runners {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "  %s\n", n)
	}
	fmt.Fprintf(os.Stderr, "  all (runs every experiment)\n\nflags:\n")
	flag.PrintDefaults()
}
