package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"

	"ccf/internal/wire"
)

// wireCheck is CI's binary-protocol smoke client: it round-trips the
// daemon's wire protocol end to end and fails on any disagreement, so a
// frame-layout or content-negotiation regression cannot ship behind
// passing JSON tests. Against the raw-TCP listener at addr it inserts a
// batch, queries it back closed-loop, then pipelined; when httpBase is
// non-empty it replays the same query as a binary frame on the HTTP
// endpoint (Content-Type negotiation) and cross-checks the bitmap. Only
// no-false-negatives is asserted — inserted keys must all come back
// true — because absent keys may legitimately collide.
func wireCheck(w io.Writer, addr, httpBase, filter string, numAttrs int) error {
	const n = 64
	keys := make([]uint64, n)
	attrs := make([]uint64, 0, n*numAttrs)
	for i := range keys {
		keys[i] = uint64(i)*2654435761 + 99
		for a := 0; a < numAttrs; a++ {
			attrs = append(attrs, uint64(i%(a+3)))
		}
	}

	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("wire-check: dial %s: %w", addr, err)
	}
	defer c.Close()
	ins, err := c.Insert(filter, keys, attrs, numAttrs)
	if err != nil {
		return fmt.Errorf("wire-check: insert: %w", err)
	}
	if ins.Rows != n {
		return fmt.Errorf("wire-check: insert acked %d rows, sent %d", ins.Rows, n)
	}
	res, err := c.Query(filter, nil, keys, false)
	if err != nil {
		return fmt.Errorf("wire-check: query: %w", err)
	}
	for i, ok := range res {
		if !ok {
			return fmt.Errorf("wire-check: false negative: inserted key %d absent", keys[i])
		}
	}
	// Pipelined: the same batch queried several times in one flight;
	// every response must line up with its request.
	const depth = 4
	for i := 0; i < depth; i++ {
		c.SendQuery(filter, nil, keys, false)
	}
	if err := c.Flush(); err != nil {
		return fmt.Errorf("wire-check: flush: %w", err)
	}
	for i := 0; i < depth; i++ {
		r, err := c.RecvResult()
		if err != nil {
			return fmt.Errorf("wire-check: pipelined recv %d: %w", i, err)
		}
		if r.N != n {
			return fmt.Errorf("wire-check: pipelined response %d: %d results for %d keys", i, r.N, n)
		}
	}

	if httpBase != "" {
		frame := wire.AppendQuery(nil, filter, nil, keys, false)
		url := httpBase + "/filters/" + filter + "/query"
		resp, err := http.Post(url, wire.ContentType, bytes.NewReader(frame))
		if err != nil {
			return fmt.Errorf("wire-check: http: %w", err)
		}
		defer resp.Body.Close()
		var buf wire.Buffer
		op, payload, err := wire.ReadFrame(resp.Body, &buf, 0)
		if err != nil {
			return fmt.Errorf("wire-check: http frame: %w", err)
		}
		if op == wire.OpError {
			e, _ := wire.DecodeError(payload)
			return fmt.Errorf("wire-check: http: %v", e)
		}
		r, err := wire.DecodeResult(payload)
		if err != nil {
			return fmt.Errorf("wire-check: http result: %w", err)
		}
		if r.N != n {
			return fmt.Errorf("wire-check: http: %d results for %d keys", r.N, n)
		}
		for i := range keys {
			if r.Bit(i) != res[i] {
				return fmt.Errorf("wire-check: http and tcp disagree on key %d", keys[i])
			}
		}
	}
	fmt.Fprintf(w, "ccfbench: wire-check %s ok: %d rows inserted, %d keys verified closed-loop, %d pipelined responses%s\n",
		addr, n, n, depth, map[bool]string{true: ", http binary path cross-checked", false: ""}[httpBase != ""])
	return nil
}
