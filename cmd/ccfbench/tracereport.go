package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// traceRecord is the slice of a BENCH_serve.json record the trace report
// needs; the file is written by `ccfd bench` (see cmd/ccfd).
type traceRecord struct {
	Op               string                `json:"op"`
	Impl             string                `json:"impl"`
	Shards           int                   `json:"shards"`
	Batch            int                   `json:"batch"`
	NsPerOp          float64               `json:"ns_per_op"`
	TraceOverheadNs  float64               `json:"trace_overhead_ns"`
	PhaseAttribution map[string]phaseEntry `json:"phase_attribution"`
}

type phaseEntry struct {
	Count   uint64  `json:"count"`
	TotalNs int64   `json:"total_ns"`
	P50Ns   float64 `json:"p50_ns"`
	P99Ns   float64 `json:"p99_ns"`
}

// traceReport reads a BENCH_serve.json file and prints the tracing
// pass's records: per-request trace overhead and the p50/p99 phase
// attribution table — where sampled request time went, by phase.
func traceReport(w io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var records []traceRecord
	if err := json.Unmarshal(data, &records); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	warnSingleCore(w, data)
	found := 0
	for _, r := range records {
		if len(r.PhaseAttribution) == 0 {
			continue
		}
		found++
		fmt.Fprintf(w, "%s/%s shards=%d batch=%d: %.1f ns/key, trace overhead %.0f ns/request\n",
			r.Op, r.Impl, r.Shards, r.Batch, r.NsPerOp, r.TraceOverheadNs)
		phases := make([]string, 0, len(r.PhaseAttribution))
		for p := range r.PhaseAttribution {
			phases = append(phases, p)
		}
		// Widest total first: the attribution answers "where did the
		// time go", so lead with the biggest sink.
		sort.Slice(phases, func(i, j int) bool {
			return r.PhaseAttribution[phases[i]].TotalNs > r.PhaseAttribution[phases[j]].TotalNs
		})
		fmt.Fprintf(w, "  %-12s %10s %14s %12s %12s\n", "phase", "count", "total", "p50", "p99")
		for _, p := range phases {
			e := r.PhaseAttribution[p]
			fmt.Fprintf(w, "  %-12s %10d %14s %12s %12s\n",
				p, e.Count,
				time.Duration(e.TotalNs).Round(time.Microsecond),
				time.Duration(e.P50Ns).Round(10*time.Nanosecond),
				time.Duration(e.P99Ns).Round(10*time.Nanosecond))
		}
		fmt.Fprintln(w)
	}
	if found == 0 {
		return fmt.Errorf("%s: no records with phase_attribution — regenerate with `ccfd bench`", path)
	}
	return nil
}
