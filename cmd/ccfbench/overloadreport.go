package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// overloadRecord is the slice of a BENCH_serve.json record the overload
// report needs; the records are written by `ccfd bench overload`.
type overloadRecord struct {
	Op         string  `json:"op"`
	Impl       string  `json:"impl"`
	Shards     int     `json:"shards"`
	Batch      int     `json:"batch"`
	Clients    int     `json:"clients"`
	OfferedQPS float64 `json:"offered_qps"`
	GoodputQPS float64 `json:"goodput_qps"`
	ShedRate   float64 `json:"shed_rate"`
	P50Ns      float64 `json:"p50_ns"`
	P99Ns      float64 `json:"p99_ns"`
	P999Ns     float64 `json:"p999_ns"`
}

// overloadReport reads a BENCH_serve.json and prints the overload pass:
// goodput and success-latency tails under offered load past capacity,
// with admission control off versus on. The comparison to look for is
// the controlled pass holding p99/p999 flat by converting the excess
// into fast sheds, where the uncontrolled pass lets it pile into queues.
func overloadReport(w io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var records []overloadRecord
	if err := json.Unmarshal(data, &records); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	warnSingleCore(w, data)
	found := 0
	for _, r := range records {
		if r.Op != "overload" {
			continue
		}
		if found == 0 {
			fmt.Fprintf(w, "%-18s %7s %6s %12s %12s %7s %10s %10s %10s\n",
				"impl", "shards", "batch", "offered", "goodput", "shed%", "p50", "p99", "p999")
		}
		found++
		fmt.Fprintf(w, "%-18s %7d %6d %12.0f %12.0f %7.1f %10s %10s %10s\n",
			r.Impl, r.Shards, r.Batch, r.OfferedQPS, r.GoodputQPS, r.ShedRate*100,
			time.Duration(r.P50Ns).Round(10*time.Microsecond),
			time.Duration(r.P99Ns).Round(10*time.Microsecond),
			time.Duration(r.P999Ns).Round(10*time.Microsecond))
	}
	if found == 0 {
		return fmt.Errorf("%s: no overload records — regenerate with `ccfd bench overload`", path)
	}
	return nil
}
