package main

import (
	"fmt"
	"io"
	"testing"

	"ccf/internal/core"
	"ccf/internal/shard"
)

// allocReport benchmarks the storage engine's hot paths with allocation
// accounting — the CLI form of the packed engine's contract that Query,
// Insert (vector variants) and the sharded batch probe are allocation-free
// in steady state. Each row is measured with testing.Benchmark, so the
// numbers match `go test -bench` output.
func allocReport(w io.Writer, seed uint64) error {
	type row struct {
		name string
		res  testing.BenchmarkResult
	}
	var rows []row

	for _, v := range []core.Variant{core.VariantPlain, core.VariantChained, core.VariantBloom, core.VariantMixed} {
		f, err := loadedCore(v, seed)
		if err != nil {
			return err
		}
		pred := core.And(core.Eq(0, 3), core.Eq(1, 2))
		rows = append(rows, row{"query/" + v.String(), testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.Query(uint64(i)&(1<<15-1), pred)
			}
		})})
	}

	for _, v := range []core.Variant{core.VariantPlain, core.VariantChained, core.VariantMixed} {
		v := v
		rows = append(rows, row{"insert/" + v.String(), testing.Benchmark(func(b *testing.B) {
			var f *core.Filter
			var err error
			attrs := []uint64{0, 0}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if i&(1<<15-1) == 0 {
					b.StopTimer()
					f, err = core.New(core.Params{Variant: v, NumAttrs: 2, Capacity: 1 << 16, Seed: seed})
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				k := uint64(i) & (1<<15 - 1)
				attrs[0], attrs[1] = k%16, k%7
				if err := f.Insert(k, attrs); err != nil {
					b.Fatal(err)
				}
			}
		})})
	}

	for _, shards := range []int{1, 4} {
		s, keys, err := loadedShards(shards, seed)
		if err != nil {
			return err
		}
		pred := core.And(core.Eq(0, 3))
		const batch = 1024
		dst := make([]bool, 0, batch)
		rows = append(rows, row{fmt.Sprintf("querybatch/shards=%d", shards),
			testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					lo := (i * batch) % (len(keys) - batch)
					dst = s.QueryBatchInto(dst[:0], keys[lo:lo+batch], pred)
				}
			})})
	}

	printMachineContext(w)
	fmt.Fprintf(w, "%-24s %12s %12s %10s\n", "path", "ns/op", "allocs/op", "B/op")
	for _, r := range rows {
		ns := float64(r.res.T.Nanoseconds()) / float64(r.res.N)
		if len(r.name) > 10 && r.name[:10] == "querybatch" {
			// Batch rows: latency per key, allocations per whole batch op.
			fmt.Fprintf(w, "%-24s %12.2f %12d %10d  (ns per key; allocs per batch)\n",
				r.name, ns/1024, r.res.AllocsPerOp(), r.res.AllocedBytesPerOp())
			continue
		}
		fmt.Fprintf(w, "%-24s %12.2f %12d %10d\n",
			r.name, ns, r.res.AllocsPerOp(), r.res.AllocedBytesPerOp())
	}
	return nil
}

func loadedCore(v core.Variant, seed uint64) (*core.Filter, error) {
	f, err := core.New(core.Params{Variant: v, NumAttrs: 2, Capacity: 1 << 16, BloomBits: 24, Seed: seed})
	if err != nil {
		return nil, err
	}
	for k := uint64(0); k < 1<<15; k++ {
		if err := f.Insert(k, []uint64{k % 16, k % 7}); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func loadedShards(shards int, seed uint64) (*shard.ShardedFilter, []uint64, error) {
	s, err := shard.New(shard.Options{
		Shards:  shards,
		Workers: 1,
		Params:  core.Params{NumAttrs: 1, Capacity: 1 << 16, Seed: seed},
	})
	if err != nil {
		return nil, nil, err
	}
	keys := make([]uint64, 1<<15)
	attrs := make([][]uint64, len(keys))
	for i := range keys {
		keys[i] = uint64(i)*2654435761 + seed
		attrs[i] = []uint64{uint64(i % 11)}
	}
	for _, err := range s.InsertBatch(keys, attrs) {
		if err != nil {
			return nil, nil, err
		}
	}
	return s, keys, nil
}
