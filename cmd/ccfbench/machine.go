package main

import (
	"fmt"
	"io"
	"runtime"

	"ccf/internal/simd"
)

// printMachineContext prefixes a report with the hardware facts that
// make its numbers comparable across runs: core count, architecture,
// detected CPU features, and which batch probe kernel is active.
func printMachineContext(w io.Writer) {
	fmt.Fprintf(w, "machine: cores=%d goarch=%s probe-engine=%s features=%q\n",
		runtime.NumCPU(), runtime.GOARCH, simd.Active(), simd.Features())
}
