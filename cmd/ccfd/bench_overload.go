package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ccf/internal/core"
	"ccf/internal/server"
	"ccf/internal/shard"
	"ccf/internal/simd"
)

// benchOverloadCmd is `ccfd bench overload`: it pushes query load past
// the serving capacity of an in-process handler and records what
// overload does to goodput and tail latency, once with admission control
// off (every request is accepted and queues inside the runtime) and once
// with a bounded in-flight limit shedding the excess as fast 503s. The
// records land in BENCH_serve.json under op "overload"; render them with
// `ccfbench -overload-report BENCH_serve.json`.
func benchOverloadCmd(args []string) error {
	fs := flag.NewFlagSet("bench overload", flag.ExitOnError)
	keys := fs.Int("keys", 50000, "distinct keys preloaded into the filter")
	batch := fs.Int("batch", 256, "keys per query request")
	shards := fs.Int("shards", 4, "shard count")
	seed := fs.Int64("seed", 1, "workload and hashing seed")
	duration := fs.Duration("duration", 2*time.Second, "measured run length per pass")
	factor := fs.Float64("overload", 3, "offered load as a multiple of the calibrated closed-loop capacity")
	maxInflight := fs.Int("max-inflight", 0, "admission limit for the controlled pass (0 = 4x GOMAXPROCS)")
	maxQueue := fs.Int("max-queue", 0, "admission queue depth for the controlled pass (0 = 2x max-inflight)")
	queueTimeout := fs.Duration("queue-timeout", 100*time.Millisecond, "admission queue timeout for the controlled pass")
	out := fs.String("out", "BENCH_serve.json", "JSON results path, merged with existing records (empty = skip)")
	probeEngine := fs.String("probe-engine", "auto", "batch probe engine: auto, scalar, or an explicit kernel name (avx2, neon)")
	fs.Parse(args)

	if err := simd.SetEngine(*probeEngine); err != nil {
		return err
	}
	if *keys < 1 || *batch < 1 || *shards < 1 || *duration <= 0 || *factor <= 1 {
		return fmt.Errorf("-keys, -batch and -shards must be at least 1, -duration positive, -overload above 1")
	}
	inflight := *maxInflight
	if inflight <= 0 {
		// A little past the core count: enough concurrency to cover
		// scheduling bubbles, small enough that queueing stays visible.
		inflight = 4 * runtime.GOMAXPROCS(0)
	}
	queue := *maxQueue
	if queue <= 0 {
		queue = 2 * inflight
	}
	results, err := runBenchOverload(overloadConfig{
		keys: *keys, batch: *batch, shards: *shards, seed: *seed,
		duration: *duration, factor: *factor,
		admission: server.AdmissionOptions{
			MaxInflight:  inflight,
			MaxQueue:     queue,
			QueueTimeout: *queueTimeout,
		},
	}, os.Stdout)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := mergeOverloadRecords(*out, results); err != nil {
			return err
		}
		fmt.Printf("merged %d overload records into %s\n", len(results), *out)
	}
	return nil
}

type overloadConfig struct {
	keys, batch, shards int
	seed                int64
	duration            time.Duration
	factor              float64
	admission           server.AdmissionOptions
}

// shotStats aggregates one open-loop pass: counts by outcome plus the
// sorted success latencies.
type shotStats struct {
	issued, ok, shed, dropped int64
	lats                      []time.Duration
}

func (s *shotStats) pct(q float64) float64 {
	if len(s.lats) == 0 {
		return 0
	}
	i := int(q * float64(len(s.lats)))
	if i >= len(s.lats) {
		i = len(s.lats) - 1
	}
	return float64(s.lats[i].Nanoseconds())
}

// discardRW is the minimal ResponseWriter the in-process passes need:
// the body is thrown away, only the status (and Retry-After, implicitly
// via the header map) is observed.
type discardRW struct {
	hdr  http.Header
	code int
}

func (w *discardRW) Header() http.Header         { return w.hdr }
func (w *discardRW) Write(b []byte) (int, error) { return len(b), nil }
func (w *discardRW) WriteHeader(c int)           { w.code = c }

// runBenchOverload preloads one filter, calibrates closed-loop capacity
// against an uncontrolled handler, then offers factor x that rate to the
// same registry twice — admission control off and on — and records
// goodput, shed rate and success-latency tails for both passes.
func runBenchOverload(cfg overloadConfig, w io.Writer) ([]BenchResult, error) {
	reg := server.NewRegistry(16)
	params := core.Params{NumAttrs: 1, Capacity: cfg.keys * 2, Seed: uint64(cfg.seed)}
	e, err := reg.Create("bench", shard.Options{Shards: cfg.shards, Workers: 1, Params: params}, nil)
	if err != nil {
		return nil, err
	}
	keys := make([]uint64, cfg.keys)
	attrs := make([][]uint64, cfg.keys)
	for i := range keys {
		keys[i] = uint64(i)*2654435761 + uint64(cfg.seed)
		attrs[i] = []uint64{uint64(i % 8)}
	}
	for i, ierr := range e.Filter().InsertBatch(keys, attrs) {
		if ierr != nil {
			return nil, fmt.Errorf("overload preload %d: %w", i, ierr)
		}
	}
	body, err := json.Marshal(server.QueryRequest{Keys: keys[:cfg.batch]})
	if err != nil {
		return nil, err
	}
	const path = "/filters/bench/query"

	uncontrolled := server.NewHandlerOpts(reg, server.HandlerOptions{})
	controlled := server.NewHandlerOpts(reg, server.HandlerOptions{Admission: cfg.admission})

	// Closed-loop calibration: one client per core, back to back, against
	// the uncontrolled handler. Requests/sec here is the capacity the
	// overload factor multiplies.
	clients := runtime.GOMAXPROCS(0)
	var calibrated int64
	calibDur := cfg.duration / 2
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			end := time.Now().Add(calibDur)
			for time.Now().Before(end) {
				if do(uncontrolled, path, body) == http.StatusOK {
					atomic.AddInt64(&calibrated, 1)
				}
			}
		}()
	}
	wg.Wait()
	capacity := float64(calibrated) / calibDur.Seconds()
	if capacity < 1 {
		return nil, fmt.Errorf("calibration completed no requests")
	}
	offered := capacity * cfg.factor

	var results []BenchResult
	for _, pass := range []struct {
		impl string
		h    http.Handler
	}{
		{"server", uncontrolled},
		{"server+admission", controlled},
	} {
		st := openLoop(pass.h, path, body, offered, cfg.duration)
		r := BenchResult{
			Op: "overload", Impl: pass.impl, Variant: params.Variant.String(),
			Shards: cfg.shards, Batch: cfg.batch,
			Cores:       runtime.NumCPU(),
			Goarch:      runtime.GOARCH,
			CPUFeatures: simd.Features(),
			ProbeEngine: simd.Active(),
			Keys:        cfg.keys,
			Ops:         int(st.issued),
			Clients:     cfg.admission.MaxInflight,
			OfferedQPS:  float64(st.issued) / cfg.duration.Seconds(),
			GoodputQPS:  float64(st.ok) / cfg.duration.Seconds(),
			ShedRate:    float64(st.shed+st.dropped) / float64(max64(st.issued, 1)),
			P50Ns:       st.pct(0.50),
			P99Ns:       st.pct(0.99),
			P999Ns:      st.pct(0.999),
		}
		results = append(results, r)
	}

	if w != nil {
		fmt.Fprintf(w, "capacity %.0f req/s, offering %.0f req/s (x%.1f) for %s\n",
			capacity, offered, cfg.factor, cfg.duration)
		fmt.Fprintf(w, "%-18s %12s %12s %7s %10s %10s %10s\n",
			"impl", "offered", "goodput", "shed%", "p50", "p99", "p999")
		for _, r := range results {
			fmt.Fprintf(w, "%-18s %12.0f %12.0f %7.1f %10s %10s %10s\n",
				r.Impl, r.OfferedQPS, r.GoodputQPS, r.ShedRate*100,
				time.Duration(r.P50Ns).Round(10*time.Microsecond),
				time.Duration(r.P99Ns).Round(10*time.Microsecond),
				time.Duration(r.P999Ns).Round(10*time.Microsecond))
		}
	}
	return results, nil
}

// do runs one in-process request and returns the status code.
func do(h http.Handler, path string, body []byte) int {
	req, err := http.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	if err != nil {
		return 0
	}
	req.Header.Set("Content-Type", "application/json")
	rw := &discardRW{hdr: make(http.Header), code: http.StatusOK}
	h.ServeHTTP(rw, req)
	return rw.code
}

// openLoop offers requests at a fixed rate regardless of completions —
// the open-loop shape that actually exposes overload (a closed loop
// self-throttles). Arrivals that would exceed the outstanding cap are
// dropped at the client and counted with the sheds: on a saturated
// server without admission control that is where the queue ends up.
func openLoop(h http.Handler, path string, body []byte, offered float64, d time.Duration) shotStats {
	const maxOutstanding = 4096
	interval := time.Duration(float64(time.Second) / offered)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	sem := make(chan struct{}, maxOutstanding)
	var st shotStats
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	next := start
	for {
		now := time.Now()
		if now.Sub(start) >= d {
			break
		}
		if now.Before(next) {
			time.Sleep(next.Sub(now))
		}
		next = next.Add(interval)
		st.issued++
		select {
		case sem <- struct{}{}:
		default:
			st.dropped++
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			code := do(h, path, body)
			lat := time.Since(t0)
			mu.Lock()
			switch {
			case code == http.StatusOK:
				st.ok++
				st.lats = append(st.lats, lat)
			case code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests:
				st.shed++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	sort.Slice(st.lats, func(i, j int) bool { return st.lats[i] < st.lats[j] })
	return st
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// mergeOverloadRecords rewrites path with earlier overload records
// replaced by the new ones, keeping every other benchmark record.
func mergeOverloadRecords(path string, overload []BenchResult) error {
	var existing []BenchResult
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &existing); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	merged := existing[:0]
	for _, r := range existing {
		if r.Op != "overload" {
			merged = append(merged, r)
		}
	}
	merged = append(merged, overload...)
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
