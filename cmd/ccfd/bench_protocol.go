package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"ccf/internal/core"
	"ccf/internal/server"
	"ccf/internal/shard"
	"ccf/internal/wire"
)

// wirePipelineDepth is the request window the pipelined TCP pass keeps in
// flight — deep enough to hide one round trip behind the next without
// modelling an unrealistically patient client.
const wirePipelineDepth = 16

// benchProtocols measures the daemon tax per protocol: the same query
// workload replayed against a real in-process daemon (HTTP server plus
// raw-TCP wire listener over one registry, admission off) as JSON over
// HTTP, binary frames over HTTP, and binary frames over the persistent
// TCP listener both closed-loop and pipelined. ns/op stays per key, so
// these records read directly against the in-process sharded pass: the
// gap is serialization plus transport, and the binary-vs-JSON delta at
// equal transport is the wire format's win alone.
func benchProtocols(cfg benchConfig, params core.Params, shards int,
	keys []uint64, attrs [][]uint64, workload []uint64,
	mkResult func(op, impl string, shards, batch, ops int, m measurement) BenchResult) ([]BenchResult, error) {
	reg := server.NewRegistry(0)
	e, err := reg.Create("bench", shard.Options{Shards: shards, Workers: 1, Params: params}, nil)
	if err != nil {
		return nil, err
	}
	for i, err := range e.Filter().InsertBatch(keys, attrs) {
		if err != nil {
			return nil, fmt.Errorf("protocol preload %d: %w", i, err)
		}
	}
	api := server.NewServer(reg, server.HandlerOptions{})

	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hsrv := &http.Server{Handler: api.Handler()}
	go hsrv.Serve(hln)
	defer hsrv.Close()
	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go api.ServeWire(wln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		api.ShutdownWire(ctx)
	}()

	httpURL := "http://" + hln.Addr().String() + "/filters/bench/query"
	jsonPred := []server.CondJSON{{Attr: 0, Values: []uint64{1}}}
	wirePred := []wire.Cond{{Attr: 0, Values: []uint64{1}}}

	// Batch 64 is the small-batch protocol-tax point the wire format
	// targets; cfg.batch (default 1024) shows the amortized end.
	batches := []int{64, cfg.batch}
	if cfg.batch == batches[0] {
		batches = batches[:1]
	}

	type pass struct {
		protocol  string
		transport string
		run       func(batch int) (time.Duration, error)
	}

	httpClient := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2}}
	defer httpClient.CloseIdleConnections()

	// replay walks the workload in batch-sized windows.
	replay := func(batch int, fn func(b []uint64) error) (time.Duration, error) {
		start := time.Now()
		for lo := 0; lo < len(workload); lo += batch {
			end := lo + batch
			if end > len(workload) {
				end = len(workload)
			}
			if err := fn(workload[lo:end]); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	jsonHTTP := func(batch int) (time.Duration, error) {
		var resp server.QueryResponse
		return replay(batch, func(b []uint64) error {
			body, err := json.Marshal(server.QueryRequest{Keys: b, Predicate: jsonPred})
			if err != nil {
				return err
			}
			res, err := httpClient.Post(httpURL, "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			defer res.Body.Close()
			if res.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(res.Body)
				return fmt.Errorf("json query: %s: %s", res.Status, msg)
			}
			resp.Results = resp.Results[:0]
			if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
				return err
			}
			if len(resp.Results) != len(b) {
				return fmt.Errorf("json query: %d results for %d keys", len(resp.Results), len(b))
			}
			return nil
		})
	}

	var frame []byte
	var rbuf wire.Buffer
	binHTTP := func(batch int) (time.Duration, error) {
		return replay(batch, func(b []uint64) error {
			frame = wire.AppendQuery(frame[:0], "bench", wirePred, b, false)
			res, err := httpClient.Post(httpURL, wire.ContentType, bytes.NewReader(frame))
			if err != nil {
				return err
			}
			defer res.Body.Close()
			op, payload, err := wire.ReadFrame(res.Body, &rbuf, 0)
			if err != nil {
				return err
			}
			if op == wire.OpError {
				e, _ := wire.DecodeError(payload)
				return fmt.Errorf("binary query: %v", e)
			}
			r, err := wire.DecodeResult(payload)
			if err != nil {
				return err
			}
			if r.N != len(b) {
				return fmt.Errorf("binary query: %d results for %d keys", r.N, len(b))
			}
			return nil
		})
	}

	binTCP := func(batch int) (time.Duration, error) {
		c, err := wire.Dial(wln.Addr().String(), 5*time.Second)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		return replay(batch, func(b []uint64) error {
			res, err := c.Query("bench", wirePred, b, false)
			if err != nil {
				return err
			}
			if len(res) != len(b) {
				return fmt.Errorf("tcp query: %d results for %d keys", len(res), len(b))
			}
			return nil
		})
	}

	binTCPPipelined := func(batch int) (time.Duration, error) {
		c, err := wire.Dial(wln.Addr().String(), 5*time.Second)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		start := time.Now()
		sent := make([]int, 0, wirePipelineDepth)
		drain := func() error {
			if err := c.Flush(); err != nil {
				return err
			}
			for _, n := range sent {
				r, err := c.RecvResult()
				if err != nil {
					return err
				}
				if r.N != n {
					return fmt.Errorf("pipelined query: %d results for %d keys", r.N, n)
				}
			}
			sent = sent[:0]
			return nil
		}
		for lo := 0; lo < len(workload); lo += batch {
			end := lo + batch
			if end > len(workload) {
				end = len(workload)
			}
			c.SendQuery("bench", wirePred, workload[lo:end], false)
			sent = append(sent, end-lo)
			if len(sent) == wirePipelineDepth {
				if err := drain(); err != nil {
					return 0, err
				}
			}
		}
		if err := drain(); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}

	passes := []pass{
		{"json", "http", jsonHTTP},
		{"binary", "http", binHTTP},
		{"binary", "tcp", binTCP},
		{"binary", "tcp-pipelined", binTCPPipelined},
	}
	var results []BenchResult
	for _, batch := range batches {
		for _, p := range passes {
			if !protocolEnabled(cfg.protocols, p.protocol) {
				continue
			}
			var runErr error
			m := measured(func() time.Duration {
				d, err := p.run(batch)
				runErr = err
				return d
			})
			if runErr != nil {
				return nil, fmt.Errorf("%s/%s batch %d: %w", p.protocol, p.transport, batch, runErr)
			}
			r := mkResult("query", "daemon", shards, batch, len(workload), m)
			r.Protocol = p.protocol
			r.Transport = p.transport
			results = append(results, r)
		}
	}
	return results, nil
}

// protocolEnabled reports whether the comma-separated -protocols flag
// includes proto.
func protocolEnabled(flagVal, proto string) bool {
	for _, p := range strings.Split(flagVal, ",") {
		if strings.TrimSpace(p) == proto {
			return true
		}
	}
	return false
}
