// Command ccfd is the conditional-cuckoo-filter daemon: it serves named,
// sharded filters over HTTP for the paper's pushdown deployment (filters
// built once, probed at high rate by query processors, §3), and ships a
// bench mode that replays a Zipf-skewed workload against the sharded and
// single-lock implementations.
//
// Usage:
//
//	ccfd serve [-addr :8437] [-cache 64] [-max-body 67108864]
//	           [-data-dir DIR] [-fsync always|interval|never]
//	           [-fsync-interval 5ms] [-checkpoint-bytes N]
//	           [-checkpoint-records N] [-pprof-addr 127.0.0.1:6060]
//	           [-auto-grow] [-metrics-addr 127.0.0.1:9437]
//	           [-log-format text|json] [-log-level info]
//	           [-slow-query 0] [-trace-sample 0] [-probe-engine auto]
//	           [-request-timeout 0] [-max-inflight 0] [-max-queue 0]
//	           [-queue-timeout 1s] [-rearm-min 0] [-rearm-max 0]
//	           [-fault-schedule ""]
//	ccfd bench [-keys 100000] [-queries 1000000] [-batch 1024]
//	           [-shards 1,4,16] [-variant chained] [-alpha 1.1]
//	           [-clients 0] [-seed 1] [-out BENCH_serve.json]
//	           [-durable-fsync interval] [-durable-dir DIR]
//	           [-contended-clients 4] [-read-frac 0.95]
//	           [-probe-engine auto]
//	ccfd bench grow [-capacity 50000] [-batch 1024] [-shards 1]
//	           [-queries N] [-seed 1] [-out BENCH_serve.json] [-dir DIR]
//	ccfd bench overload [-keys 50000] [-batch 256] [-shards 4]
//	           [-duration 2s] [-overload 3] [-max-inflight 0]
//	           [-max-queue 0] [-queue-timeout 100ms]
//	           [-out BENCH_serve.json]
//
// serve exposes the internal/server API:
//
//	PUT    /filters/{name}           create or replace a filter
//	POST   /filters/{name}/insert    batched inserts
//	POST   /filters/{name}/query     batched queries (via_view caches
//	                                 predicate key-views across requests)
//	GET    /filters/{name}/stats     one filter's stats
//	GET    /filters/{name}/snapshot  binary snapshot
//	POST   /filters/{name}/restore   restore from a snapshot
//	DELETE /filters/{name}           drop a filter
//	GET    /stats, GET /healthz, GET /readyz, GET /metrics
//
// /healthz is pure liveness (200 as soon as the listener is up);
// /readyz answers 503 until store recovery completes, then reports the
// unrecoverable-filter count. /metrics serves the Prometheus text
// exposition — request/latency series per endpoint, per-filter seqlock
// and occupancy series, and the WAL/checkpoint/fold families; see the
// README's Observability section for the catalogue. -metrics-addr
// additionally serves /metrics on a separate private address.
// Logs are structured (log/slog): -log-format picks text or json,
// -log-level sets the floor, and -slow-query logs any request at or
// above the given latency at Warn with its request and trace IDs.
//
// Every request carries a W3C trace context (incoming traceparent
// honored, one emitted on the response) with per-phase spans — decode,
// shard probe, WAL append, fsync wait, encode — recorded at zero
// allocations. Requests over -slow-query are pinned in a flight
// recorder served by GET /debug/traces (?format=text for a waterfall);
// -trace-sample N additionally captures every Nth request and feeds
// the ccfd_trace_phase_seconds attribution histograms, and latency
// histogram buckets carry trace-ID exemplars under /metrics?exemplars=1.
// See the README's Observability section.
//
// With -pprof-addr the daemon also serves net/http/pprof on a separate
// (keep it private) address, so hot-path regressions can be profiled in
// production: `go tool pprof http://127.0.0.1:6060/debug/pprof/profile`.
//
// With -data-dir the daemon is durable: every mutation is written to a
// per-filter WAL before it is acknowledged, background checkpoints fold
// the log into checksummed segments, and startup recovers the newest
// valid segment plus the WAL tail — so restarts (including SIGKILL)
// serve the same answers as before. See the README's Durability section.
//
// When the disk misbehaves (ENOSPC, I/O errors, a failed fsync) a
// durable filter degrades to read-only instead of taking the daemon
// down: queries keep serving from memory, writes answer 503 with
// Retry-After, and a background probe (backoff bounded by -rearm-min /
// -rearm-max) restores write availability on a fresh WAL once the disk
// recovers. -fault-schedule injects those failures deterministically for
// testing; see the README's "Failure modes and degraded operation".
//
// -max-inflight bounds concurrently served requests (excess waits in a
// -max-queue deep queue for up to -queue-timeout, then sheds 503 +
// Retry-After), -request-timeout attaches a per-request deadline that
// batched shard work observes between shard groups (exceeded → 504),
// and a per-filter token-bucket rate limit can be set via the PUT body's
// rate_limit policy (throttled → 429 + Retry-After).
//
// With -auto-grow every filter gets the default elastic-capacity policy:
// instead of returning "filter full" once its sizing is exhausted, a
// filter opens doubled ladder levels (up to the policy's budget), and on
// a durable deployment a background fold rebuilds it right-sized from
// WAL replay once the ladder gets tall. Filters created with an explicit
// auto_grow policy in the PUT body keep their own settings. See the
// README's Elastic capacity section.
//
// bench prints a table and writes machine-readable JSON records
// ({op, impl, variant, shards, batch, ns_per_op, qps, cores}) for the
// perf trajectory tracked across PRs; the sharded+wal records measure
// the WAL's cost on the insert path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux; served only on -pprof-addr
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ccf/internal/fault"
	"ccf/internal/obs"
	"ccf/internal/obs/trace"
	"ccf/internal/server"
	"ccf/internal/simd"
	"ccf/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serveCmd(os.Args[2:])
	case "bench":
		switch {
		case len(os.Args) > 2 && os.Args[2] == "grow":
			err = benchGrowCmd(os.Args[3:])
		case len(os.Args) > 2 && os.Args[2] == "overload":
			err = benchOverloadCmd(os.Args[3:])
		default:
			err = benchCmd(os.Args[2:])
		}
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "ccfd: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccfd: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  ccfd serve [-addr :8437] [-cache 64] [-max-body BYTES]
             [-data-dir DIR] [-fsync always|interval|never]
             [-fsync-interval 5ms] [-checkpoint-bytes N] [-checkpoint-records N]
             [-pprof-addr 127.0.0.1:6060] [-auto-grow]
             [-metrics-addr 127.0.0.1:9437] [-log-format text|json]
             [-log-level debug|info|warn|error] [-slow-query DURATION]
             [-trace-sample N] [-probe-engine auto|scalar|avx2|neon]
             [-request-timeout DURATION] [-max-inflight N] [-max-queue N]
             [-queue-timeout 1s] [-rearm-min DURATION] [-rearm-max DURATION]
             [-fault-schedule SCHEDULE]
  ccfd bench [-keys N] [-queries N] [-batch N] [-shards 1,4,16]
             [-variant chained|plain|bloom|mixed] [-alpha 1.1]
             [-clients 0] [-seed 1] [-out BENCH_serve.json]
             [-durable-fsync always|interval|never|off] [-durable-dir DIR]
             [-contended-clients 4] [-read-frac 0.95]
             [-probe-engine auto|scalar|avx2|neon]
  ccfd bench grow [-capacity N] [-batch N] [-shards N] [-queries N]
             [-seed 1] [-out BENCH_serve.json] [-dir DIR]
  ccfd bench overload [-keys N] [-batch N] [-shards N] [-duration 2s]
             [-overload FACTOR] [-max-inflight N] [-max-queue N]
             [-queue-timeout 100ms] [-out BENCH_serve.json]
`)
}

// serveConfig carries everything serveUntilDone needs; tests build it
// directly and drive the loop with a cancelable context.
type serveConfig struct {
	cacheCap    int
	maxBody     int64
	dataDir     string // empty = in-memory only
	fsync       store.FsyncPolicy
	flushEvery  time.Duration
	ckptBytes   int64
	ckptRecords int
	pprofAddr   string // empty = pprof disabled
	autoGrow    bool   // default elastic-capacity policy for all filters
	quiet       bool   // suppress stderr chatter (tests)

	wireAddr    string        // raw-TCP binary wire listener (empty = disabled)
	metricsAddr string        // also serve /metrics here (empty = main listener only)
	logFormat   string        // "text" (default) or "json"
	logLevel    slog.Level    // zero value = Info
	slowQuery   time.Duration // log requests at/above this latency; 0 disables
	traceSample int           // trace every Nth request; 0 = slow-only tracing
	logW        io.Writer     // log destination override (tests); nil = stderr

	// Admission control and deadlines (zero value = off).
	admission server.AdmissionOptions
	// faultSchedule, when non-empty, injects deterministic storage
	// faults under the durable store (dev/test only; see -fault-schedule).
	faultSchedule string
	// rearmMin/rearmMax bound the degraded-mode recovery probe backoff;
	// zero takes the store defaults.
	rearmMin, rearmMax time.Duration
}

func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8437", "listen address")
	cache := fs.Int("cache", server.DefaultViewCacheCap, "predicate view-cache capacity per filter")
	maxBody := fs.Int64("max-body", server.DefaultMaxBodyBytes, "maximum HTTP request body / wire frame payload bytes (oversize gets 413 or a too_large error frame)")
	wireAddr := fs.String("wire-addr", "", "also serve the binary wire protocol on this raw-TCP address (empty = disabled); see the README's Wire protocol section")
	dataDir := fs.String("data-dir", "", "durable store directory (empty = in-memory only)")
	fsyncFlag := fs.String("fsync", "interval", "WAL fsync policy: always|interval|never")
	flushEvery := fs.Duration("fsync-interval", 5*time.Millisecond, "group-commit flush cadence for -fsync interval|never")
	ckptBytes := fs.Int64("checkpoint-bytes", 64<<20, "checkpoint a filter after this many WAL bytes (0 disables)")
	ckptRecords := fs.Int("checkpoint-records", 1<<20, "checkpoint a filter after this many WAL records (0 disables)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled); keep it private")
	autoGrow := fs.Bool("auto-grow", false, "apply the default elastic-capacity policy to filters created without one (and to recovered filters): grow instead of returning full, fold back when the ladder gets tall")
	metricsAddr := fs.String("metrics-addr", "", "also serve /metrics on this address (empty = main listener only); keep it private")
	logFormat := fs.String("log-format", "text", "log output format: text|json")
	logLevel := fs.String("log-level", "info", "minimum log level: debug|info|warn|error")
	slowQuery := fs.Duration("slow-query", 0, "log requests at or above this latency at Warn and pin their trace in /debug/traces (0 disables)")
	traceSample := fs.Int("trace-sample", 0, "capture every Nth request's trace into /debug/traces and the phase-attribution histograms (0 = slow requests only, 1 = all)")
	probeEngine := fs.String("probe-engine", "auto", "batch probe engine: auto (detected best), scalar, or an explicit kernel name (avx2, neon)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request deadline; batched work past it answers 504 (0 disables)")
	maxInflight := fs.Int("max-inflight", 0, "maximum concurrently served requests; excess queues then sheds 503 (0 disables admission control)")
	maxQueue := fs.Int("max-queue", 0, "admission queue depth once -max-inflight is saturated (0 = shed immediately)")
	queueTimeout := fs.Duration("queue-timeout", server.DefaultQueueTimeout, "longest a request waits in the admission queue before shedding 503")
	faultSchedule := fs.String("fault-schedule", "", "inject deterministic storage faults under -data-dir, e.g. 'fsync:3:enospc; write@wal:bytes=4096:torn' (dev/test only)")
	rearmMin := fs.Duration("rearm-min", 0, "initial backoff for the degraded-mode recovery probe (0 = store default)")
	rearmMax := fs.Duration("rearm-max", 0, "backoff ceiling for the degraded-mode recovery probe (0 = store default)")
	fs.Parse(args)

	if err := simd.SetEngine(*probeEngine); err != nil {
		return err
	}
	if *faultSchedule != "" {
		// Fail fast on a bad schedule; the store re-parses at open time.
		if _, err := fault.Parse(*faultSchedule); err != nil {
			return err
		}
	}
	policy, err := store.ParseFsyncPolicy(*fsyncFlag)
	if err != nil {
		return err
	}
	level, err := parseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	cfg := serveConfig{
		cacheCap:    *cache,
		maxBody:     *maxBody,
		wireAddr:    *wireAddr,
		dataDir:     *dataDir,
		fsync:       policy,
		flushEvery:  *flushEvery,
		ckptBytes:   *ckptBytes,
		ckptRecords: *ckptRecords,
		pprofAddr:   *pprofAddr,
		autoGrow:    *autoGrow,
		metricsAddr: *metricsAddr,
		logFormat:   *logFormat,
		logLevel:    level,
		slowQuery:   *slowQuery,
		traceSample: *traceSample,
		admission: server.AdmissionOptions{
			MaxInflight:    *maxInflight,
			MaxQueue:       *maxQueue,
			QueueTimeout:   *queueTimeout,
			RequestTimeout: *reqTimeout,
		},
		faultSchedule: *faultSchedule,
		rearmMin:      *rearmMin,
		rearmMax:      *rearmMax,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ccfd: serving on %s\n", ln.Addr())
	return serveUntilDone(ctx, ln, cfg)
}

// startPprof serves net/http/pprof's DefaultServeMux handlers on their
// own listener, so profiling stays off the public API address and can be
// firewalled separately. Closing the returned server stops it (and its
// listener) cleanly.
func startPprof(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("pprof listen: %w", err)
	}
	srv := &http.Server{
		Handler:           http.DefaultServeMux, // where net/http/pprof registered
		ReadHeaderTimeout: 10 * time.Second,
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// disabledToNeg maps the flag convention "0 disables" onto the store's
// "negative disables, 0 means default".
func disabledToNeg[T int | int64](v T) T {
	if v == 0 {
		return -1
	}
	return v
}

func parseLogLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
	}
}

// serveUntilDone runs the HTTP API on ln until ctx is cancelled, then
// shuts down gracefully: HTTP drains first, then the store is flushed,
// fsynced and closed, and only then is the final metrics summary logged
// and the log flushed — so the last line always describes the state
// that actually hit disk. Tests drive it directly with a :0 listener.
//
// The listener starts answering before the store opens: /healthz is live
// immediately, while /readyz answers 503 until recovery completes (and
// then reports how many filter directories were unrecoverable). Load
// balancers should gate on /readyz; a long WAL replay is alive but not
// ready.
func serveUntilDone(ctx context.Context, ln net.Listener, cfg serveConfig) error {
	logDst := io.Writer(os.Stderr)
	if cfg.logW != nil {
		logDst = cfg.logW
	} else if cfg.quiet {
		logDst = io.Discard
	}
	logger, closeLog := obs.NewLogger(logDst, cfg.logFormat, cfg.logLevel)
	defer closeLog()
	if cfg.pprofAddr != "" {
		psrv, addr, err := startPprof(cfg.pprofAddr)
		if err != nil {
			return err
		}
		defer psrv.Close()
		logger.Info("pprof serving", "addr", "http://"+addr+"/debug/pprof/")
	}
	om := obs.NewRegistry()
	// The probe-engine info gauge follows the Prometheus _info convention:
	// constant 1, identity in the labels — dashboards join on it to split
	// perf series by kernel, and a fleet can spot a host that silently
	// fell back to scalar.
	om.RegisterGaugeFunc("ccfd_probe_engine_info",
		"Active batch probe engine and detected CPU features (value is always 1).",
		func() float64 { return 1 },
		obs.Label{Key: "engine", Value: simd.Active()},
		obs.Label{Key: "features", Value: simd.Features()})
	logger.Info("probe engine",
		"engine", simd.Active(),
		"best", simd.Best(),
		"goarch", runtime.GOARCH,
		"cpu_features", simd.Features())
	// Tracing is always on: unsampled requests still carry a trace
	// context (zero-alloc), slow requests are pinned in the flight
	// recorder, and -trace-sample adds every-Nth capture for phase
	// attribution. The tracer's own counters and per-phase histograms
	// go through the same registry as everything else.
	tracer := trace.New(trace.Options{
		SampleEvery:   cfg.traceSample,
		SlowThreshold: cfg.slowQuery,
		Recorder:      trace.NewRecorder(32, 32),
	})
	tm := tracer.TracerMetrics()
	om.RegisterCounter("ccfd_traces_slow_total",
		"Traces pinned in the flight recorder for exceeding -slow-query.", &tm.SlowCaptured)
	om.RegisterCounter("ccfd_traces_sampled_total",
		"Traces captured by -trace-sample.", &tm.SampledCaptured)
	om.RegisterCounter("ccfd_trace_spans_dropped_total",
		"Spans dropped because a request exceeded its span buffer.", &tm.SpansDropped)
	for _, p := range trace.Phases() {
		om.RegisterHistogram("ccfd_trace_phase_seconds",
			"Per-phase latency attribution from sampled traces.",
			tracer.PhaseHistogram(p), obs.Label{Key: "phase", Value: p.String()})
	}
	health := &server.Health{}
	reg := server.NewRegistry(cfg.cacheCap)
	reg.AttachObs(om)
	if cfg.autoGrow {
		p := server.DefaultAutoGrowPolicy()
		reg.SetDefaultPolicy(&p)
		logger.Info("auto-grow on",
			"max_levels", p.MaxLevels,
			"growth_factor", p.GrowthFactor,
			"grow_at_load", p.GrowAtLoad,
			"fold_at_levels", p.FoldAtLevels)
	}
	if cfg.metricsAddr != "" {
		mln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listen: %w", err)
		}
		mmux := http.NewServeMux()
		mmux.Handle("GET /metrics", om.Handler())
		msrv := &http.Server{Handler: mmux, ReadHeaderTimeout: 10 * time.Second}
		go msrv.Serve(mln)
		defer msrv.Close()
		logger.Info("metrics serving", "addr", "http://"+mln.Addr().String()+"/metrics")
	}

	// Serve before recovery so liveness and readiness are distinguishable:
	// the registry is attached to the store only once recovery completes,
	// and /readyz flips to 200 at the same moment.
	if cfg.admission.MaxInflight > 0 || cfg.admission.RequestTimeout > 0 {
		logger.Info("admission control on",
			"max_inflight", cfg.admission.MaxInflight,
			"max_queue", cfg.admission.MaxQueue,
			"queue_timeout", cfg.admission.QueueTimeout.String(),
			"request_timeout", cfg.admission.RequestTimeout.String())
	}
	// Slowloris and stuck-peer protection: header reads, whole-request
	// reads and response writes are all bounded, and idle keep-alives are
	// reaped. The write timeout comfortably exceeds any -request-timeout,
	// so the daemon's own deadline (504) fires before the socket's.
	api := server.NewServer(reg, server.HandlerOptions{
		MaxBodyBytes: cfg.maxBody,
		Metrics:      om,
		Logger:       logger,
		SlowQuery:    cfg.slowQuery,
		Health:       health,
		Tracer:       tracer,
		Admission:    cfg.admission,
	})
	srv := &http.Server{
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// The binary wire listener shares the HTTP side's admission limiter,
	// tracer, metrics, and frame core; it drains in the same graceful
	// shutdown below.
	var wireErrc chan error
	if cfg.wireAddr != "" {
		wln, err := net.Listen("tcp", cfg.wireAddr)
		if err != nil {
			srv.Close()
			<-errc
			return fmt.Errorf("wire listen: %w", err)
		}
		logger.Info("wire protocol serving", "addr", wln.Addr().String())
		wireErrc = make(chan error, 1)
		go func() { wireErrc <- api.ServeWire(wln) }()
	}

	var st *store.Store
	if cfg.dataDir != "" {
		sopts := store.Options{
			Dir:               cfg.dataDir,
			Fsync:             cfg.fsync,
			FlushInterval:     cfg.flushEvery,
			CheckpointBytes:   disabledToNeg(cfg.ckptBytes),
			CheckpointRecords: disabledToNeg(cfg.ckptRecords),
			RearmMin:          cfg.rearmMin,
			RearmMax:          cfg.rearmMax,
			Tracer:            tracer,
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			},
		}
		if cfg.faultSchedule != "" {
			sched, perr := fault.Parse(cfg.faultSchedule)
			if perr != nil {
				srv.Close()
				<-errc
				return fmt.Errorf("parsing -fault-schedule: %w", perr)
			}
			sopts.FS = fault.New(fault.OS, sched)
			logger.Warn("fault injection active — storage faults will be injected deliberately",
				"schedule", cfg.faultSchedule)
		}
		var err error
		st, err = store.Open(sopts)
		if err != nil {
			srv.Close()
			<-errc
			return fmt.Errorf("opening store: %w", err)
		}
		rs := st.RecoveryStats()
		logger.Info("store recovered",
			"dir", cfg.dataDir,
			"filters", rs.Filters,
			"segments_loaded", rs.SegmentsLoaded,
			"segments_bad", rs.SegmentsBad,
			"records_replayed", rs.RecordsReplayed,
			"records_skipped", rs.RecordsSkipped,
			"torn_tails", rs.TornTails,
			"unrecoverable", rs.Unrecoverable,
			"duration", rs.Duration.Round(time.Microsecond).String(),
			"fsync", cfg.fsync.String())
		reg.AttachStore(st)
		health.SetReady(rs.Unrecoverable)
	} else {
		health.SetReady(0)
	}

	select {
	case err := <-errc:
		if st != nil {
			st.Close()
		}
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if wireErrc != nil {
		if err := api.ShutdownWire(shutdownCtx); err != nil {
			logger.Warn("wire shutdown", "err", err.Error())
		}
		if err := <-wireErrc; !errors.Is(err, server.ErrWireClosed) {
			logger.Warn("wire listener", "err", err.Error())
		}
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		if st != nil {
			st.Close()
		}
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		if st != nil {
			st.Close()
		}
		return err
	}
	if st != nil {
		// Flush and fsync every WAL so a graceful stop loses nothing even
		// under -fsync never.
		if err := st.Close(); err != nil {
			return fmt.Errorf("closing store: %w", err)
		}
		// Final metrics summary — deliberately after Close, so the numbers
		// cover everything that reached disk, including the final flush.
		m := st.Metrics()
		logger.Info("store closed",
			"wal_append_bytes", m.WALAppendBytes.Value(),
			"wal_append_frames", m.WALAppendFrames.Value(),
			"fsyncs", m.FsyncLatency.Count(),
			"fsync_p99_ms", m.FsyncLatency.Quantile(0.99)*1e3,
			"checkpoints", m.Checkpoints.Value(),
			"folds_completed", m.FoldsCompleted.Value(),
			"folds_scheduled", m.FoldsScheduled.Value())
	}
	logger.Info("shut down")
	return nil
}
