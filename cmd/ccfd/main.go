// Command ccfd is the conditional-cuckoo-filter daemon: it serves named,
// sharded filters over HTTP for the paper's pushdown deployment (filters
// built once, probed at high rate by query processors, §3), and ships a
// bench mode that replays a Zipf-skewed workload against the sharded and
// single-lock implementations.
//
// Usage:
//
//	ccfd serve [-addr :8437] [-cache 64]
//	ccfd bench [-keys 100000] [-queries 1000000] [-batch 1024]
//	           [-shards 1,4,16] [-variant chained] [-alpha 1.1]
//	           [-clients 0] [-seed 1] [-out BENCH_serve.json]
//
// serve exposes the internal/server API:
//
//	PUT    /filters/{name}           create or replace a filter
//	POST   /filters/{name}/insert    batched inserts
//	POST   /filters/{name}/query     batched queries (via_view caches
//	                                 predicate key-views across requests)
//	GET    /filters/{name}/snapshot  binary snapshot
//	POST   /filters/{name}/restore   restore from a snapshot
//	DELETE /filters/{name}           drop a filter
//	GET    /stats, GET /healthz
//
// bench prints a table and writes machine-readable JSON records
// ({op, impl, variant, shards, batch, ns_per_op, qps, cores}) for the
// perf trajectory tracked across PRs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ccf/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serveCmd(os.Args[2:])
	case "bench":
		err = benchCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "ccfd: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccfd: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  ccfd serve [-addr :8437] [-cache 64]
  ccfd bench [-keys N] [-queries N] [-batch N] [-shards 1,4,16]
             [-variant chained|plain|bloom|mixed] [-alpha 1.1]
             [-clients 0] [-seed 1] [-out BENCH_serve.json]
`)
}

func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8437", "listen address")
	cache := fs.Int("cache", server.DefaultViewCacheCap, "predicate view-cache capacity per filter")
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ccfd: serving on %s\n", ln.Addr())
	return serveUntilDone(ctx, ln, *cache)
}

// serveUntilDone runs the HTTP API on ln until ctx is cancelled, then
// shuts down gracefully; tests drive it directly with a cancelable
// context and a :0 listener.
func serveUntilDone(ctx context.Context, ln net.Listener, cacheCap int) error {
	srv := &http.Server{Handler: server.NewHandler(server.NewRegistry(cacheCap))}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "ccfd: shut down")
	return nil
}
