package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"ccf"
	"ccf/internal/core"
	"ccf/internal/server"
	"ccf/internal/shard"
	"ccf/internal/zipfmd"
)

// BenchResult is one machine-readable benchmark record; the JSON file is
// an array of these, the perf trajectory future PRs compare against.
type BenchResult struct {
	Op      string  `json:"op"`   // insert | query
	Impl    string  `json:"impl"` // sync | sharded
	Variant string  `json:"variant"`
	Shards  int     `json:"shards"` // 1 for sync
	Batch   int     `json:"batch"`  // 1 = point calls
	NsPerOp float64 `json:"ns_per_op"`
	QPS     float64 `json:"qps"`
	Cores   int     `json:"cores"`
	Alpha   float64 `json:"alpha"`
	Keys    int     `json:"keys"`
	Ops     int     `json:"ops"`
}

// benchConfig parameterizes one bench run.
type benchConfig struct {
	keys    int
	queries int
	batch   int
	shards  []int
	variant core.Variant
	alpha   float64
	clients int
	seed    int64
}

func benchCmd(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	keys := fs.Int("keys", 100000, "distinct keys inserted")
	queries := fs.Int("queries", 1000000, "queries replayed")
	batch := fs.Int("batch", 1024, "keys per batched request")
	shardsFlag := fs.String("shards", "1,4,16", "comma-separated shard counts")
	variantFlag := fs.String("variant", "chained", "filter variant")
	alpha := fs.Float64("alpha", 1.1, "Zipf-Mandelbrot skew of the query workload")
	clients := fs.Int("clients", 0, "concurrent client goroutines (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", 1, "workload and hashing seed")
	out := fs.String("out", "BENCH_serve.json", "JSON results path (empty = skip)")
	fs.Parse(args)

	variant, err := server.ParseVariant(*variantFlag)
	if err != nil {
		return err
	}
	if *keys < 1 || *queries < 1 || *batch < 1 {
		return fmt.Errorf("-keys, -queries and -batch must be at least 1")
	}
	if *clients < 0 {
		return fmt.Errorf("-clients must be non-negative")
	}
	var shardCounts []int
	for _, s := range strings.Split(*shardsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -shards entry %q", s)
		}
		shardCounts = append(shardCounts, n)
	}
	nClients := *clients
	if nClients == 0 {
		nClients = runtime.GOMAXPROCS(0)
	}
	cfg := benchConfig{
		keys: *keys, queries: *queries, batch: *batch, shards: shardCounts,
		variant: variant, alpha: *alpha, clients: nClients, seed: *seed,
	}
	results, err := runBench(cfg, os.Stdout)
	if err != nil {
		return err
	}
	if *out != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d records to %s\n", len(results), *out)
	}
	return nil
}

// runBench replays a Zipf-skewed workload against the single-lock
// SyncFilter and the sharded filter at each shard count, writing a table
// to w and returning the JSON records.
func runBench(cfg benchConfig, w io.Writer) ([]BenchResult, error) {
	keys := make([]uint64, cfg.keys)
	attrs := make([][]uint64, cfg.keys)
	for i := range keys {
		keys[i] = uint64(i)*2654435761 + uint64(cfg.seed)
		attrs[i] = []uint64{uint64(i % 8), uint64(i % 5)}
	}
	// Zipf-Mandelbrot rank sampling (the paper's multiset skew, c = 2.7):
	// rank r maps to the r-th key, so a few hot keys dominate the replay.
	dist, err := zipfmd.New(cfg.alpha, 2.7, cfg.keys, cfg.seed)
	if err != nil {
		return nil, err
	}
	workload := make([]uint64, cfg.queries)
	for i := range workload {
		workload[i] = keys[dist.Sample()-1]
	}
	pred := core.And(core.Eq(0, 1))
	params := core.Params{Variant: cfg.variant, NumAttrs: 2, Capacity: cfg.keys * 2, Seed: uint64(cfg.seed)}
	mkResult := func(op, impl string, shards, batch, ops int, elapsed time.Duration) BenchResult {
		ns := float64(elapsed.Nanoseconds()) / float64(ops)
		return BenchResult{
			Op: op, Impl: impl, Variant: cfg.variant.String(), Shards: shards,
			Batch: batch, NsPerOp: ns, QPS: 1e9 / ns, Cores: runtime.GOMAXPROCS(0),
			Alpha: cfg.alpha, Keys: cfg.keys, Ops: ops,
		}
	}
	var results []BenchResult

	// Single-lock baseline: point calls from concurrent clients.
	sf, err := ccf.NewSync(params)
	if err != nil {
		return nil, err
	}
	elapsed := inParallel(cfg.clients, cfg.keys, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sf.Insert(keys[i], attrs[i])
		}
	})
	results = append(results, mkResult("insert", "sync", 1, 1, cfg.keys, elapsed))
	elapsed = inParallel(cfg.clients, len(workload), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sf.Query(workload[i], pred)
		}
	})
	results = append(results, mkResult("query", "sync", 1, 1, len(workload), elapsed))

	// Sharded: batched calls from concurrent clients. Workers stays 1 so
	// the client goroutines are the only parallelism, the server shape.
	for _, n := range cfg.shards {
		s, err := shard.New(shard.Options{Shards: n, Workers: 1, Params: params})
		if err != nil {
			return nil, err
		}
		elapsed = inParallelBatched(cfg.clients, cfg.keys, cfg.batch, func(lo, hi int) {
			s.InsertBatch(keys[lo:hi], attrs[lo:hi])
		})
		results = append(results, mkResult("insert", "sharded", n, cfg.batch, cfg.keys, elapsed))
		elapsed = inParallelBatched(cfg.clients, len(workload), cfg.batch, func(lo, hi int) {
			s.QueryBatch(workload[lo:hi], pred)
		})
		results = append(results, mkResult("query", "sharded", n, cfg.batch, len(workload), elapsed))
	}

	if w != nil {
		fmt.Fprintf(w, "%-7s %-8s %-8s %7s %6s %12s %14s\n",
			"op", "impl", "variant", "shards", "batch", "ns/op", "qps")
		for _, r := range results {
			fmt.Fprintf(w, "%-7s %-8s %-8s %7d %6d %12.1f %14.0f\n",
				r.Op, r.Impl, r.Variant, r.Shards, r.Batch, r.NsPerOp, r.QPS)
		}
	}
	return results, nil
}

// inParallel splits [0, n) into one contiguous chunk per client, runs fn
// on each concurrently, and returns the wall time.
func inParallel(clients, n int, fn func(lo, hi int)) time.Duration {
	if clients > n {
		clients = n
	}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		lo, hi := c*n/clients, (c+1)*n/clients
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	wg.Wait()
	return time.Since(start)
}

// inParallelBatched is inParallel with each client walking its chunk in
// batch-sized requests.
func inParallelBatched(clients, n, batch int, fn func(lo, hi int)) time.Duration {
	return inParallel(clients, n, func(lo, hi int) {
		for ; lo < hi; lo += batch {
			end := lo + batch
			if end > hi {
				end = hi
			}
			fn(lo, end)
		}
	})
}
