package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"ccf"
	"ccf/internal/core"
	"ccf/internal/obs"
	"ccf/internal/obs/trace"
	"ccf/internal/server"
	"ccf/internal/shard"
	"ccf/internal/simd"
	"ccf/internal/store"
	"ccf/internal/zipfmd"
)

// BenchResult is one machine-readable benchmark record; the JSON file is
// an array of these, the perf trajectory future PRs compare against.
// AllocsPerOp and BytesPerOp are process-wide heap deltas divided by the
// operation count, so the packed engine's allocation-free steady state is
// machine-visible alongside latency.
type BenchResult struct {
	Op          string  `json:"op"`   // insert | query | mixed
	Impl        string  `json:"impl"` // sync | sharded | sharded-rlock | sharded+wal
	Variant     string  `json:"variant"`
	Shards      int     `json:"shards"` // 1 for sync
	Batch       int     `json:"batch"`  // 1 = point calls
	NsPerOp     float64 `json:"ns_per_op"`
	QPS         float64 `json:"qps"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Machine context: without it a perf trajectory across PRs silently
	// mixes hosts. Cores is the machine's logical CPU count (not
	// GOMAXPROCS, which tracks a tunable); Goarch, CPUFeatures and
	// ProbeEngine record which vector kernels the run actually used.
	Cores       int     `json:"cores"`
	Goarch      string  `json:"goarch"`
	CPUFeatures string  `json:"cpu_features"`
	ProbeEngine string  `json:"probe_engine"`
	Alpha       float64 `json:"alpha"`
	Keys        int     `json:"keys"`
	Ops         int     `json:"ops"`
	Fsync       string  `json:"fsync,omitempty"`     // sharded+wal only
	Clients     int     `json:"clients,omitempty"`   // mixed only: concurrent goroutines
	ReadFrac    float64 `json:"read_frac,omitempty"` // mixed only: fraction of read batches
	Phase       string  `json:"phase,omitempty"`     // grow mode: pre | grown | folded | rightsized
	Levels      int     `json:"levels,omitempty"`    // grow mode: ladder levels at measurement
	Rows        int     `json:"rows,omitempty"`      // grow mode: rows inserted at measurement

	// Metric-scrape summaries (-metrics, on by default): the pass's
	// instrumentation handles are registered in a throwaway exposition
	// registry and scraped before and after the measured run — the same
	// families /metrics serves — and the deltas folded in here.
	SeqlockRetries   uint64  `json:"seqlock_retries,omitempty"`   // contended passes
	SeqlockFallbacks uint64  `json:"seqlock_fallbacks,omitempty"` // contended passes
	FsyncCount       uint64  `json:"fsyncs,omitempty"`            // durable pass
	FsyncP50Ns       float64 `json:"fsync_p50_ns,omitempty"`      // durable pass
	FsyncP99Ns       float64 `json:"fsync_p99_ns,omitempty"`      // durable pass
	WALAppendBytes   uint64  `json:"wal_append_bytes,omitempty"`  // durable pass

	// Overload pass (op "overload", `ccfd bench overload`): offered versus
	// achieved request rate with and without admission control, plus the
	// success-latency tail. ShedRate counts fast 503/429 rejections and
	// client-side drops; Clients carries the admission MaxInflight.
	OfferedQPS float64 `json:"offered_qps,omitempty"`
	GoodputQPS float64 `json:"goodput_qps,omitempty"`
	ShedRate   float64 `json:"shed_rate,omitempty"`
	P50Ns      float64 `json:"p50_ns,omitempty"`
	P99Ns      float64 `json:"p99_ns,omitempty"`
	P999Ns     float64 `json:"p999_ns,omitempty"`

	// Protocol pass (impl "daemon", `-protocols`): the same query replay
	// through a real in-process daemon, so the JSON-vs-binary wire tax is
	// a committed record rather than folklore. ns_per_op stays per key.
	Protocol  string `json:"protocol,omitempty"`  // json | binary
	Transport string `json:"transport,omitempty"` // http | tcp | tcp-pipelined

	// Tracing pass (impl "sharded+trace"): TraceOverheadNs is the added
	// wall cost per request (batch) of carrying an enabled-but-unsampled
	// trace context through the probe path versus the untraced loop;
	// PhaseAttribution summarizes where request time went in the fully
	// sampled pass (p50/p99 per phase, the `ccfd bench` form of the
	// daemon's ccfd_trace_phase_seconds histograms).
	TraceOverheadNs  float64                    `json:"trace_overhead_ns,omitempty"`
	PhaseAttribution map[string]trace.PhaseStat `json:"phase_attribution,omitempty"`
}

// benchConfig parameterizes one bench run.
type benchConfig struct {
	keys    int
	queries int
	batch   int
	shards  []int
	variant core.Variant
	alpha   float64
	clients int
	seed    int64
	// durableFsync, when non-empty, adds a WAL-backed insert pass per
	// shard count under that fsync policy ("off" skips it).
	durableFsync string
	// durableDir hosts the throwaway store directories; empty = TempDir.
	durableDir string
	// contendedClients, when > 0, adds a contended pass per shard count:
	// that many goroutines at readFrac read batches, against both the
	// seqlock and the forced-RLock read path.
	contendedClients int
	readFrac         float64
	// metrics folds scraped metric summaries (seqlock retries/fallbacks,
	// fsync latency, WAL bytes) into the records.
	metrics bool
	// protocols, when non-empty, adds daemon passes replaying the query
	// workload over the listed wire protocols (json, binary).
	protocols string
}

func benchCmd(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	keys := fs.Int("keys", 100000, "distinct keys inserted")
	queries := fs.Int("queries", 1000000, "queries replayed")
	batch := fs.Int("batch", 1024, "keys per batched request")
	shardsFlag := fs.String("shards", "1,4,16", "comma-separated shard counts")
	variantFlag := fs.String("variant", "chained", "filter variant")
	alpha := fs.Float64("alpha", 1.1, "Zipf-Mandelbrot skew of the query workload")
	clients := fs.Int("clients", 0, "concurrent client goroutines (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", 1, "workload and hashing seed")
	out := fs.String("out", "BENCH_serve.json", "JSON results path (empty = skip)")
	durableFsync := fs.String("durable-fsync", "interval", "also bench WAL-backed inserts under this fsync policy (always|interval|never, off = skip)")
	durableDir := fs.String("durable-dir", "", "directory for the durable bench's throwaway stores (empty = temp)")
	contendedClients := fs.Int("contended-clients", 4, "goroutines for the contended read/write pass (0 = skip)")
	readFrac := fs.Float64("read-frac", 0.95, "fraction of read batches in the contended pass")
	metrics := fs.Bool("metrics", true, "scrape the pass's metrics before/after and fold seqlock-retry and fsync-latency summaries into the records")
	protocols := fs.String("protocols", "json,binary", "comma-separated wire protocols for the daemon pass (json, binary; empty = skip)")
	probeEngine := fs.String("probe-engine", "auto", "batch probe engine: auto, scalar, or an explicit kernel name (avx2, neon)")
	fs.Parse(args)

	if err := simd.SetEngine(*probeEngine); err != nil {
		return err
	}

	variant, err := server.ParseVariant(*variantFlag)
	if err != nil {
		return err
	}
	if *keys < 1 || *queries < 1 || *batch < 1 {
		return fmt.Errorf("-keys, -queries and -batch must be at least 1")
	}
	if *clients < 0 {
		return fmt.Errorf("-clients must be non-negative")
	}
	var shardCounts []int
	for _, s := range strings.Split(*shardsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -shards entry %q", s)
		}
		shardCounts = append(shardCounts, n)
	}
	nClients := *clients
	if nClients == 0 {
		nClients = runtime.GOMAXPROCS(0)
	}
	if *readFrac < 0 || *readFrac > 1 {
		return fmt.Errorf("-read-frac must be in [0,1]")
	}
	cfg := benchConfig{
		keys: *keys, queries: *queries, batch: *batch, shards: shardCounts,
		variant: variant, alpha: *alpha, clients: nClients, seed: *seed,
		durableFsync: *durableFsync, durableDir: *durableDir,
		contendedClients: *contendedClients, readFrac: *readFrac,
		metrics: *metrics, protocols: *protocols,
	}
	results, err := runBench(cfg, os.Stdout)
	if err != nil {
		return err
	}
	if *out != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d records to %s\n", len(results), *out)
	}
	return nil
}

// runBench replays a Zipf-skewed workload against the single-lock
// SyncFilter and the sharded filter at each shard count, writing a table
// to w and returning the JSON records.
func runBench(cfg benchConfig, w io.Writer) ([]BenchResult, error) {
	keys := make([]uint64, cfg.keys)
	attrs := make([][]uint64, cfg.keys)
	for i := range keys {
		keys[i] = uint64(i)*2654435761 + uint64(cfg.seed)
		attrs[i] = []uint64{uint64(i % 8), uint64(i % 5)}
	}
	// Zipf-Mandelbrot rank sampling (the paper's multiset skew, c = 2.7):
	// rank r maps to the r-th key, so a few hot keys dominate the replay.
	dist, err := zipfmd.New(cfg.alpha, 2.7, cfg.keys, cfg.seed)
	if err != nil {
		return nil, err
	}
	workload := make([]uint64, cfg.queries)
	for i := range workload {
		workload[i] = keys[dist.Sample()-1]
	}
	pred := core.And(core.Eq(0, 1))
	params := core.Params{Variant: cfg.variant, NumAttrs: 2, Capacity: cfg.keys * 2, Seed: uint64(cfg.seed)}
	mkResult := func(op, impl string, shards, batch, ops int, m measurement) BenchResult {
		ns := float64(m.elapsed.Nanoseconds()) / float64(ops)
		return BenchResult{
			Op: op, Impl: impl, Variant: cfg.variant.String(), Shards: shards,
			Batch: batch, NsPerOp: ns, QPS: 1e9 / ns,
			AllocsPerOp: float64(m.allocs) / float64(ops),
			BytesPerOp:  float64(m.bytes) / float64(ops),
			Cores:       runtime.NumCPU(),
			Goarch:      runtime.GOARCH,
			CPUFeatures: simd.Features(),
			ProbeEngine: simd.Active(),
			Alpha:       cfg.alpha, Keys: cfg.keys, Ops: ops,
		}
	}
	var results []BenchResult

	// Single-lock baseline: point calls from concurrent clients.
	sf, err := ccf.NewSync(params)
	if err != nil {
		return nil, err
	}
	m := measured(func() time.Duration {
		return inParallel(cfg.clients, cfg.keys, func(c, lo, hi int) {
			for i := lo; i < hi; i++ {
				sf.Insert(keys[i], attrs[i])
			}
		})
	})
	results = append(results, mkResult("insert", "sync", 1, 1, cfg.keys, m))
	m = measured(func() time.Duration {
		return inParallel(cfg.clients, len(workload), func(c, lo, hi int) {
			for i := lo; i < hi; i++ {
				sf.Query(workload[i], pred)
			}
		})
	})
	results = append(results, mkResult("query", "sync", 1, 1, len(workload), m))

	// Sharded: batched calls from concurrent clients through the *Into
	// entry points with one recycled result buffer per client — the
	// steady-state server shape, which the allocs/op column verifies is
	// allocation-free. Workers stays 1 so the client goroutines are the
	// only parallelism.
	for _, n := range cfg.shards {
		s, err := shard.New(shard.Options{Shards: n, Workers: 1, Params: params})
		if err != nil {
			return nil, err
		}
		errBufs := make([][]error, cfg.clients)
		m = measured(func() time.Duration {
			return inParallelBatched(cfg.clients, cfg.keys, cfg.batch, func(c, lo, hi int) {
				errBufs[c] = s.InsertBatchInto(errBufs[c][:0], keys[lo:hi], attrs[lo:hi])
			})
		})
		results = append(results, mkResult("insert", "sharded", n, cfg.batch, cfg.keys, m))
		outBufs := make([][]bool, cfg.clients)
		m = measured(func() time.Duration {
			return inParallelBatched(cfg.clients, len(workload), cfg.batch, func(c, lo, hi int) {
				outBufs[c] = s.QueryBatchInto(outBufs[c][:0], workload[lo:hi], pred)
			})
		})
		results = append(results, mkResult("query", "sharded", n, cfg.batch, len(workload), m))

		// Uniform batched probe — the committed BenchmarkShardedQueryBatch
		// replayed through the harness (its own packed-variant filter,
		// uniform present keys, single client, sliding batch window) so
		// the perf trajectory's headline ns/key number is recorded here
		// and not only in `go test -bench` output. Distinguished from
		// the Zipf pass by impl and alpha=0.
		uni, err := runUniformBatch(n, cfg, mkResult)
		if err != nil {
			return nil, err
		}
		results = append(results, uni)

		// Tracing pass: the same query replay with a request trace
		// context threaded through the probe path, recording what the
		// tracer costs when enabled-but-unsampled (the production
		// default) plus the per-phase attribution of a fully sampled run.
		tr, err := benchTraced(cfg, params, n, keys, attrs, workload, pred, mkResult)
		if err != nil {
			return nil, err
		}
		results = append(results, tr)
	}

	// Contended mode: N goroutines hammering the same sharded filter at a
	// read/write batch mix, once through the seqlock read path and once
	// with PessimisticReads forcing the RLock baseline — the multi-
	// goroutine serving throughput BENCH_serve.json previously never
	// recorded. On a single core the two mostly measure the same
	// scheduling; the seqlock's win is that readers neither bounce the
	// lock's cache line nor block behind writers, which needs real
	// parallelism to show.
	if cfg.contendedClients > 0 {
		for _, n := range cfg.shards {
			for _, mode := range []struct {
				impl        string
				pessimistic bool
			}{{"sharded", false}, {"sharded-rlock", true}} {
				r, err := benchContended(cfg, params, n, mode.impl, mode.pessimistic,
					keys, attrs, workload, pred, mkResult)
				if err != nil {
					return nil, err
				}
				results = append(results, r)
			}
		}
	}

	// Protocol mode: the query workload replayed against a real in-process
	// daemon (HTTP + raw-TCP wire listener) per protocol, at the highest
	// configured shard count, so BENCH_serve.json carries the
	// serialization-and-transport tax next to the in-process bound.
	if strings.TrimSpace(cfg.protocols) != "" {
		n := cfg.shards[len(cfg.shards)-1]
		pr, err := benchProtocols(cfg, params, n, keys, attrs, workload, mkResult)
		if err != nil {
			return nil, err
		}
		results = append(results, pr...)
	}

	// Durable mode: the same batched insert through the store's WAL, so
	// BENCH_serve.json records what durability costs on the write path.
	if cfg.durableFsync != "" && cfg.durableFsync != "off" {
		policy, err := store.ParseFsyncPolicy(cfg.durableFsync)
		if err != nil {
			return nil, err
		}
		for _, n := range cfg.shards {
			dir, err := os.MkdirTemp(cfg.durableDir, "ccfd-bench-*")
			if err != nil {
				return nil, err
			}
			r, err := benchDurableInsert(cfg, policy, dir, n, keys, attrs, mkResult)
			os.RemoveAll(dir)
			if err != nil {
				return nil, err
			}
			results = append(results, r)
		}
	}

	if w != nil {
		fmt.Fprintf(w, "%-7s %-13s %-8s %7s %6s %12s %14s %12s %12s %-10s\n",
			"op", "impl", "variant", "shards", "batch", "ns/op", "qps", "allocs/op", "B/op", "mode")
		for _, r := range results {
			mode := r.Fsync
			if r.Clients > 0 {
				mode = fmt.Sprintf("%dc/%.0f%%r", r.Clients, r.ReadFrac*100)
			}
			if r.Protocol != "" {
				mode = r.Protocol + "/" + r.Transport
			}
			fmt.Fprintf(w, "%-7s %-13s %-8s %7d %6d %12.1f %14.0f %12.4f %12.1f %-10s\n",
				r.Op, r.Impl, r.Variant, r.Shards, r.Batch, r.NsPerOp, r.QPS,
				r.AllocsPerOp, r.BytesPerOp, mode)
		}
	}
	return results, nil
}

// scrapeValues renders the registry's Prometheus exposition — the same
// bytes GET /metrics serves — and parses every sample line into a
// series → value map, so a bench pass can diff two scrapes exactly like
// an external Prometheus would.
func scrapeValues(reg *obs.Registry) map[string]float64 {
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	vals := make(map[string]float64)
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil {
			vals[line[:i]] = v
		}
	}
	return vals
}

// benchContended replays the query workload from contendedClients
// goroutines with every writePeriod-th batch replaced by a batched insert
// of fresh keys — the read-heavy contended serving shape. Fresh write
// keys come from a bounded churn range so occupancy stays within the
// table's sizing however many queries are configured; once the range is
// exhausted the writes become re-inserts (deduplicated, but still taking
// the write lock and bumping the seqlock, which is the contention that
// matters here).
func benchContended(cfg benchConfig, params core.Params, shards int, impl string,
	pessimistic bool, keys []uint64, attrs [][]uint64, workload []uint64, pred core.Predicate,
	mkResult func(op, impl string, shards, batch, ops int, m measurement) BenchResult) (BenchResult, error) {
	s, err := shard.New(shard.Options{
		Shards: shards, Workers: 1, PessimisticReads: pessimistic, Params: params,
	})
	if err != nil {
		return BenchResult{}, err
	}
	for i, err := range s.InsertBatch(keys, attrs) {
		if err != nil {
			return BenchResult{}, fmt.Errorf("contended preload %d: %w", i, err)
		}
	}
	var before map[string]float64
	var om *obs.Registry
	if cfg.metrics {
		om = obs.NewRegistry()
		sm := s.Metrics()
		om.RegisterCounter("ccfd_seqlock_retries_total",
			"Optimistic probes discarded by a concurrent writer.", &sm.SeqlockRetries)
		om.RegisterCounter("ccfd_seqlock_fallbacks_total",
			"Reads served under the shard read lock.", &sm.SeqlockFallbacks)
		before = scrapeValues(om)
	}
	writePeriod := 0 // 0 = never write
	if cfg.readFrac < 1 {
		writePeriod = int(1/(1-cfg.readFrac) + 0.5)
		if writePeriod < 1 {
			writePeriod = 1
		}
	}
	churn := cfg.keys / 2
	if churn < cfg.batch {
		churn = cfg.batch
	}
	clients := cfg.contendedClients
	outBufs := make([][]bool, clients)
	errBufs := make([][]error, clients)
	wAttr := []uint64{1, 1}
	m := measured(func() time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			c := c
			lo, hi := c*len(workload)/clients, (c+1)*len(workload)/clients
			wg.Add(1)
			go func() {
				defer wg.Done()
				wkeys := make([]uint64, 0, cfg.batch)
				wattrs := make([][]uint64, 0, cfg.batch)
				next := 0
				batchNo := 0
				for ; lo < hi; lo += cfg.batch {
					end := lo + cfg.batch
					if end > hi {
						end = hi
					}
					batchNo++
					if writePeriod > 0 && batchNo%writePeriod == 0 {
						wkeys, wattrs = wkeys[:0], wattrs[:0]
						for j := lo; j < end; j++ {
							// Disjoint from the preloaded key space; cycled
							// within the per-client churn range.
							k := uint64(1)<<40 + uint64(c)<<32 + uint64(next%churn)
							next++
							wkeys = append(wkeys, k)
							wattrs = append(wattrs, wAttr)
						}
						errBufs[c] = s.InsertBatchInto(errBufs[c][:0], wkeys, wattrs)
					} else {
						outBufs[c] = s.QueryBatchInto(outBufs[c][:0], workload[lo:end], pred)
					}
				}
			}()
		}
		wg.Wait()
		return time.Since(start)
	})
	r := mkResult("mixed", impl, shards, cfg.batch, len(workload), m)
	r.Clients = clients
	r.ReadFrac = cfg.readFrac
	if om != nil {
		after := scrapeValues(om)
		r.SeqlockRetries = uint64(after["ccfd_seqlock_retries_total"] - before["ccfd_seqlock_retries_total"])
		r.SeqlockFallbacks = uint64(after["ccfd_seqlock_fallbacks_total"] - before["ccfd_seqlock_fallbacks_total"])
	}
	return r, nil
}

// benchTraced measures the tracer on the batched query path at one shard
// count: an untraced baseline loop, the same loop carrying an
// enabled-but-unsampled request trace (the production default — must be
// within noise of the baseline and allocation-free), and a fully sampled
// pass whose per-phase histograms become the record's PhaseAttribution.
// All three run single-client so the delta is the tracer's, not the
// scheduler's.
func benchTraced(cfg benchConfig, params core.Params, shards int,
	keys []uint64, attrs [][]uint64, workload []uint64, pred core.Predicate,
	mkResult func(op, impl string, shards, batch, ops int, m measurement) BenchResult) (BenchResult, error) {
	s, err := shard.New(shard.Options{Shards: shards, Workers: 1, Params: params})
	if err != nil {
		return BenchResult{}, err
	}
	for i, err := range s.InsertBatch(keys, attrs) {
		if err != nil {
			return BenchResult{}, fmt.Errorf("traced preload %d: %w", i, err)
		}
	}
	out := make([]bool, 0, cfg.batch)
	replay := func(fn func(batch []uint64)) time.Duration {
		start := time.Now()
		for lo := 0; lo < len(workload); lo += cfg.batch {
			end := lo + cfg.batch
			if end > len(workload) {
				end = len(workload)
			}
			fn(workload[lo:end])
		}
		return time.Since(start)
	}
	batches := (len(workload) + cfg.batch - 1) / cfg.batch

	base := measured(func() time.Duration {
		return replay(func(b []uint64) { out = s.QueryBatchInto(out[:0], b, pred) })
	})
	unsampled := trace.New(trace.Options{Recorder: trace.NewRecorder(8, 8)})
	traced := measured(func() time.Duration {
		return replay(func(b []uint64) {
			r := unsampled.StartRequest("")
			out = s.QueryBatchTracedInto(out[:0], b, pred, r)
			unsampled.Finish(r, 200)
		})
	})
	sampled := trace.New(trace.Options{SampleEvery: 1, Recorder: trace.NewRecorder(8, 8)})
	replay(func(b []uint64) {
		r := sampled.StartRequest("")
		out = s.QueryBatchTracedInto(out[:0], b, pred, r)
		sampled.Finish(r, 200)
	})

	r := mkResult("query", "sharded+trace", shards, cfg.batch, len(workload), traced)
	r.TraceOverheadNs = float64((traced.elapsed - base.elapsed).Nanoseconds()) / float64(batches)
	r.PhaseAttribution = sampled.Attribution()
	return r, nil
}

// benchDurableInsert replays the insert workload through a WAL-backed
// filter in a throwaway store at one shard count.
func benchDurableInsert(cfg benchConfig, policy store.FsyncPolicy, dir string, shards int,
	keys []uint64, attrs [][]uint64,
	mkResult func(op, impl string, shards, batch, ops int, m measurement) BenchResult) (BenchResult, error) {
	st, err := store.Open(store.Options{Dir: dir, Fsync: policy})
	if err != nil {
		return BenchResult{}, err
	}
	defer st.Close()
	params := core.Params{Variant: cfg.variant, NumAttrs: 2, Capacity: cfg.keys * 2, Seed: uint64(cfg.seed)}
	s, err := shard.New(shard.Options{Shards: shards, Workers: 1, Params: params})
	if err != nil {
		return BenchResult{}, err
	}
	fl, err := st.Create("bench", s)
	if err != nil {
		return BenchResult{}, err
	}
	var before map[string]float64
	var om *obs.Registry
	sm := st.Metrics()
	if cfg.metrics {
		om = obs.NewRegistry()
		om.RegisterCounter("ccfd_wal_append_bytes_total",
			"WAL bytes appended.", &sm.WALAppendBytes)
		om.RegisterHistogram("ccfd_wal_fsync_seconds",
			"WAL fsync latency.", sm.FsyncLatency)
		before = scrapeValues(om)
	}
	errBufs := make([][]error, cfg.clients)
	var insErr error
	var mu sync.Mutex
	m := measured(func() time.Duration {
		return inParallelBatched(cfg.clients, cfg.keys, cfg.batch, func(c, lo, hi int) {
			errs, err := fl.InsertBatchInto(errBufs[c][:0], keys[lo:hi], attrs[lo:hi])
			errBufs[c] = errs
			if err != nil {
				mu.Lock()
				insErr = err
				mu.Unlock()
			}
		})
	})
	if insErr != nil {
		return BenchResult{}, insErr
	}
	r := mkResult("insert", "sharded+wal", shards, cfg.batch, cfg.keys, m)
	r.Fsync = policy.String()
	if om != nil {
		// Force the tail of the run durable first: a short pass can finish
		// inside one group-commit interval, leaving its only fsync pending.
		if err := fl.Sync(); err != nil {
			return BenchResult{}, err
		}
		after := scrapeValues(om)
		r.WALAppendBytes = uint64(after["ccfd_wal_append_bytes_total"] - before["ccfd_wal_append_bytes_total"])
		r.FsyncCount = uint64(after["ccfd_wal_fsync_seconds_count"] - before["ccfd_wal_fsync_seconds_count"])
		// The exposition carries buckets, not quantiles; summarize those
		// from the histogram handle. Quantile returns scaled units
		// (seconds here), the record wants ns.
		r.FsyncP50Ns = sm.FsyncLatency.Quantile(0.50) * 1e9
		r.FsyncP99Ns = sm.FsyncLatency.Quantile(0.99) * 1e9
	}
	return r, nil
}

// measurement pairs wall time with the process-wide heap delta of a run.
type measurement struct {
	elapsed time.Duration
	allocs  uint64
	bytes   uint64
}

// runUniformBatch mirrors internal/shard's BenchmarkShardedQueryBatch:
// a packed default-variant filter at 50% load, every probed key present,
// a single client sliding a 1024-key batch window. Its ns/key is the
// headline number the perf trajectory tracks for the vectorized probe
// pipeline.
func runUniformBatch(shards int, cfg benchConfig,
	mkResult func(op, impl string, shards, batch, ops int, m measurement) BenchResult) (BenchResult, error) {
	const batch = 1024
	params := core.Params{NumAttrs: 1, Capacity: 1 << 16, Seed: uint64(cfg.seed)}
	s, err := shard.New(shard.Options{Shards: shards, Workers: 1, Params: params})
	if err != nil {
		return BenchResult{}, err
	}
	keys := make([]uint64, 1<<15)
	attrs := make([][]uint64, len(keys))
	for i := range keys {
		keys[i] = uint64(i)*2654435761 + uint64(cfg.seed)
		attrs[i] = []uint64{uint64(i % 11)}
	}
	for _, err := range s.InsertBatch(keys, attrs) {
		if err != nil {
			return BenchResult{}, err
		}
	}
	pred := core.And(core.Eq(0, 3))
	out := make([]bool, 0, batch)
	ops := cfg.queries / batch * batch
	if ops < batch {
		ops = batch
	}
	span := len(keys) - batch
	m := measured(func() time.Duration {
		start := time.Now()
		for done := 0; done < ops; done += batch {
			lo := done % span
			out = s.QueryBatchInto(out[:0], keys[lo:lo+batch], pred)
		}
		return time.Since(start)
	})
	r := mkResult("query", "sharded-uniform", shards, batch, ops, m)
	r.Alpha = 0
	r.Variant = params.Variant.String()
	r.Keys = len(keys)
	return r, nil
}

// measured runs fn between two MemStats readings. The deltas include the
// benchmark harness's own client goroutines, so a steady-state
// allocation-free path reports a small near-zero fraction per op rather
// than exactly zero.
func measured(fn func() time.Duration) measurement {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	elapsed := fn()
	runtime.ReadMemStats(&after)
	return measurement{
		elapsed: elapsed,
		allocs:  after.Mallocs - before.Mallocs,
		bytes:   after.TotalAlloc - before.TotalAlloc,
	}
}

// inParallel splits [0, n) into one contiguous chunk per client, runs fn
// on each concurrently, and returns the wall time. fn receives the client
// index so callers can keep per-client scratch (recycled result buffers).
func inParallel(clients, n int, fn func(c, lo, hi int)) time.Duration {
	if clients > n {
		clients = n
	}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		lo, hi := c*n/clients, (c+1)*n/clients
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(c, lo, hi)
		}()
	}
	wg.Wait()
	return time.Since(start)
}

// inParallelBatched is inParallel with each client walking its chunk in
// batch-sized requests.
func inParallelBatched(clients, n, batch int, fn func(c, lo, hi int)) time.Duration {
	return inParallel(clients, n, func(c, lo, hi int) {
		for ; lo < hi; lo += batch {
			end := lo + batch
			if end > hi {
				end = hi
			}
			fn(c, lo, end)
		}
	})
}
