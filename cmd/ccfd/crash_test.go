package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ccf/internal/server"
	"ccf/internal/store"
)

func putFilter(t *testing.T, url, name, body string) {
	t.Helper()
	req, err := http.NewRequest("PUT", url+"/filters/"+name, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT %s: %v", name, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT %s: %s", name, resp.Status)
	}
}

// TestRestartRoundTrip is the HTTP-level durability test: create, fill
// and query a filter; shut the daemon down gracefully; boot a second
// daemon on the same -data-dir and require identical answers — then keep
// writing to prove the recovered store accepts new traffic.
func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := serveConfig{dataDir: dir, fsync: store.FsyncInterval, flushEvery: time.Millisecond}

	url, shutdown := startDaemon(t, cfg)
	putFilter(t, url, "jobs", `{"variant":"chained","shards":4,"capacity":65536,"num_attrs":2}`)
	keys := make([]uint64, 500)
	attrs := make([][]uint64, 500)
	for i := range keys {
		keys[i] = uint64(i)*6364136223846793005 + 17
		attrs[i] = []uint64{uint64(i % 4), uint64(i % 7)}
	}
	var ins server.InsertResponse
	post(t, url+"/filters/jobs/insert", server.InsertRequest{Keys: keys, Attrs: attrs}, &ins)
	if ins.Accepted != len(keys) {
		t.Fatalf("accepted %d of %d", ins.Accepted, len(keys))
	}
	query := server.QueryRequest{
		Keys:      append(append([]uint64{}, keys...), 999999999, 123456789),
		Predicate: []server.CondJSON{{Attr: 0, Values: []uint64{0, 1}}},
	}
	var before server.QueryResponse
	post(t, url+"/filters/jobs/query", query, &before)
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	url2, shutdown2 := startDaemon(t, cfg)
	var after server.QueryResponse
	post(t, url2+"/filters/jobs/query", query, &after)
	if len(after.Results) != len(before.Results) {
		t.Fatalf("result lengths differ: %d vs %d", len(after.Results), len(before.Results))
	}
	for i := range before.Results {
		if before.Results[i] != after.Results[i] {
			t.Fatalf("key %d: before restart %v, after %v", query.Keys[i], before.Results[i], after.Results[i])
		}
	}
	// The recovered filter keeps absorbing writes.
	post(t, url2+"/filters/jobs/insert", server.InsertRequest{
		Keys: []uint64{42}, Attrs: [][]uint64{{1, 1}},
	}, &ins)
	var q server.QueryResponse
	post(t, url2+"/filters/jobs/query", server.QueryRequest{Keys: []uint64{42}}, &q)
	if len(q.Results) != 1 || !q.Results[0] {
		t.Fatalf("post-restart insert lost: %+v", q)
	}
	if err := shutdown2(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

const (
	crashHelperEnv = "CCFD_CRASH_HELPER_DIR"
	crashFaultsEnv = "CCFD_CRASH_HELPER_FAULTS"
)

// TestCrashHelperProcess is not a test: it is the child half of the
// SIGKILL crash tests, re-executed from the test binary. It serves a
// durable daemon with -fsync always (and -auto-grow, which is inert for
// filters that never outgrow their sizing) until the parent kills it.
func TestCrashHelperProcess(t *testing.T) {
	dir := os.Getenv(crashHelperEnv)
	if dir == "" {
		t.Skip("helper for TestCrashRecoverySIGKILL")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	fmt.Printf("CCFD_ADDR=%s\n", ln.Addr())
	os.Stdout.Sync()
	cfg := serveConfig{
		cacheCap: 16, dataDir: dir, fsync: store.FsyncAlways,
		flushEvery: time.Millisecond, autoGrow: true, quiet: true,
	}
	if sched := os.Getenv(crashFaultsEnv); sched != "" {
		// Degraded-mode crash test: inject storage faults, and push the
		// re-arm probe past the test's lifetime so its state stays stable.
		cfg.faultSchedule = sched
		cfg.rearmMin, cfg.rearmMax = time.Minute, time.Minute
	}
	serveUntilDone(context.Background(), ln, cfg)
}

// startCrashHelper launches the helper daemon on dir and returns its
// base URL plus the running command (the caller kills it). extraEnv
// entries ("KEY=VALUE") are passed through to the child.
func startCrashHelper(t *testing.T, dir string, extraEnv ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(), crashHelperEnv+"="+dir)
	cmd.Env = append(cmd.Env, extraEnv...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting helper: %v", err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), "CCFD_ADDR="); ok {
				addrc <- addr
				return
			}
		}
	}()
	select {
	case addr := <-addrc:
		return "http://" + addr, cmd
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("helper daemon never reported its address")
		return "", nil
	}
}

// TestCrashRecoveryMidGrowSIGKILL is the elastic-capacity crash test: a
// deliberately undersized auto-grow filter is hammered until its ladder
// has opened levels, the daemon is SIGKILLed mid-load, and recovery must
// rebuild the multi-level ladder from the WAL with every acked key
// present — growth must not weaken the acked-means-durable contract.
func TestCrashRecoveryMidGrowSIGKILL(t *testing.T) {
	dir := t.TempDir()
	url, cmd := startCrashHelper(t, dir)
	defer cmd.Process.Kill()

	// Sized for 1024 rows; the writers push far past that.
	putFilter(t, url, "elastic",
		`{"variant":"chained","shards":2,"capacity":1024,"num_attrs":2,"auto_grow":{"max_levels":6}}`)

	var mu sync.Mutex
	var acked []uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for wtr := 0; wtr < 2; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			for it := 0; ; it++ {
				select {
				case <-stop:
					return
				default:
				}
				keys := make([]uint64, 64)
				attrs := make([][]uint64, 64)
				for i := range keys {
					keys[i] = uint64(wtr*10_000_000+it*64+i)*2654435761 + 13
					attrs[i] = []uint64{uint64(i % 4), uint64(i % 3)}
				}
				body, _ := json.Marshal(server.InsertRequest{Keys: keys, Attrs: attrs})
				resp, err := http.Post(url+"/filters/elastic/insert", "application/json", bytes.NewReader(body))
				if err != nil {
					return // daemon died mid-request: batch not acked
				}
				var ins server.InsertResponse
				derr := json.NewDecoder(resp.Body).Decode(&ins)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || derr != nil || ins.Accepted != len(keys) {
					return // growth means no row may fail; a non-ack ends this writer
				}
				mu.Lock()
				acked = append(acked, keys...)
				mu.Unlock()
			}
		}(wtr)
	}

	// Kill only once the ladder has visibly grown (stats are served
	// through the seqlock, so polling doesn't stall the writers).
	deadline := time.Now().Add(20 * time.Second)
	grown := false
	for time.Now().Before(deadline) && !grown {
		resp, err := http.Get(url + "/filters/elastic/stats")
		if err == nil {
			var fs server.FilterStats
			if json.NewDecoder(resp.Body).Decode(&fs) == nil && fs.MaxLevels >= 2 {
				grown = true
			}
			resp.Body.Close()
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !grown {
		t.Fatal("ladder never grew under load")
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	close(stop)
	wg.Wait()
	cmd.Wait()
	mu.Lock()
	ackedKeys := append([]uint64(nil), acked...)
	mu.Unlock()
	if len(ackedKeys) == 0 {
		t.Fatal("no batches were acked before the kill")
	}

	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer st.Close()
	fl := st.Get("elastic")
	if fl == nil {
		t.Fatal("filter not recovered")
	}
	stats := fl.Live().Stats()
	if stats.MaxLevels < 2 {
		t.Fatalf("recovered ladder has %d level(s), want the mid-grow structure back", stats.MaxLevels)
	}
	sf := fl.Live()
	for _, k := range ackedKeys {
		if !sf.QueryKey(k) {
			t.Fatalf("acked key %d lost in mid-grow crash (%d acked, levels %d)",
				k, len(ackedKeys), stats.MaxLevels)
		}
	}
	t.Logf("recovered %d acked keys, ladder at %d levels: %+v",
		len(ackedKeys), stats.MaxLevels, st.RecoveryStats())
}

// TestCrashRecoverySIGKILL is the acceptance test for crash safety: a
// real ccfd child process under concurrent write load is SIGKILLed, its
// WAL tail is additionally garbled with trailing garbage, and recovery
// must still answer true for every insert the daemon acked (fsync=always
// means acked implies durable).
func TestCrashRecoverySIGKILL(t *testing.T) {
	dir := t.TempDir()
	url, cmd := startCrashHelper(t, dir)
	defer cmd.Process.Kill()

	putFilter(t, url, "jobs", `{"variant":"chained","shards":2,"capacity":131072,"num_attrs":2}`)

	// Hammer inserts from two writers; kill mid-stream; keep only keys
	// whose batch was acked with a 2xx before the kill.
	var mu sync.Mutex
	var acked []uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for wtr := 0; wtr < 2; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			for it := 0; ; it++ {
				select {
				case <-stop:
					return
				default:
				}
				keys := make([]uint64, 32)
				attrs := make([][]uint64, 32)
				for i := range keys {
					keys[i] = uint64(wtr*1_000_000+it*32+i)*2654435761 + 7
					attrs[i] = []uint64{uint64(i % 4), uint64(i % 3)}
				}
				body, _ := json.Marshal(server.InsertRequest{Keys: keys, Attrs: attrs})
				resp, err := http.Post(url+"/filters/jobs/insert", "application/json", bytes.NewReader(body))
				if err != nil {
					return // daemon died mid-request: batch not acked
				}
				var ins server.InsertResponse
				derr := json.NewDecoder(resp.Body).Decode(&ins)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || derr != nil || ins.Accepted != len(keys) {
					return
				}
				mu.Lock()
				acked = append(acked, keys...)
				mu.Unlock()
			}
		}(wtr)
	}

	// Let writes accumulate, then SIGKILL mid-load.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= 2000 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	close(stop)
	wg.Wait()
	cmd.Wait()
	mu.Lock()
	ackedKeys := append([]uint64(nil), acked...)
	mu.Unlock()
	if len(ackedKeys) == 0 {
		t.Fatal("no batches were acked before the kill")
	}

	// Garble the WAL tail on top of the crash: recovery must truncate it.
	fdir := filepath.Join(dir, "filters", "f-jobs")
	entries, err := os.ReadDir(fdir)
	if err != nil {
		t.Fatalf("filter dir: %v", err)
	}
	var newestWAL string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && (newestWAL == "" || e.Name() > newestWAL) {
			newestWAL = e.Name()
		}
	}
	if newestWAL == "" {
		t.Fatal("no WAL file on disk after kill")
	}
	wf, err := os.OpenFile(filepath.Join(fdir, newestWAL), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	wf.Write([]byte{0xde, 0xad, 0xbe})
	wf.Close()

	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer st.Close()
	stats := st.RecoveryStats()
	if stats.Filters != 1 || stats.TornTails == 0 {
		t.Fatalf("recovery stats: %+v", stats)
	}
	fl := st.Get("jobs")
	if fl == nil {
		t.Fatal("filter not recovered")
	}
	sf := fl.Live()
	for _, k := range ackedKeys {
		if !sf.QueryKey(k) {
			t.Fatalf("acked key %d lost in crash (stats %+v, %d acked)", k, stats, len(ackedKeys))
		}
	}
	t.Logf("recovered %d acked keys after SIGKILL: %+v", len(ackedKeys), stats)
}

// TestCrashWhileDegradedSIGKILL is the degraded-mode half of the crash
// acceptance: a daemon whose disk "fills up" mid-load (injected ENOSPC on
// every fsync from the fifth on) poisons its WAL and flips the filter
// read-only — writes answer 503 with Retry-After while queries and
// /readyz keep serving — and a SIGKILL in that state must not lose any
// write acked before the failure. Recovery on a healthy filesystem comes
// back un-degraded and writable with every acked key present.
func TestCrashWhileDegradedSIGKILL(t *testing.T) {
	dir := t.TempDir()
	// fsync #1 is the WAL header, #2 the create record; insert batches
	// sync from #3, so two batches land before the disk "fails" for good.
	url, cmd := startCrashHelper(t, dir, crashFaultsEnv+"=fsync:5-:enospc")
	defer cmd.Process.Kill()

	putFilter(t, url, "deg", `{"variant":"chained","shards":2,"capacity":65536,"num_attrs":1}`)

	var acked []uint64
	var degradedStatus int
	var retryAfter string
	for it := 0; it < 100; it++ {
		keys := make([]uint64, 32)
		attrs := make([][]uint64, 32)
		for i := range keys {
			keys[i] = uint64(it*32+i)*2654435761 + 11
			attrs[i] = []uint64{uint64(i % 4)}
		}
		body, _ := json.Marshal(server.InsertRequest{Keys: keys, Attrs: attrs})
		resp, err := http.Post(url+"/filters/deg/insert", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("insert %d: %v", it, err)
		}
		if resp.StatusCode != http.StatusOK {
			degradedStatus = resp.StatusCode
			retryAfter = resp.Header.Get("Retry-After")
			resp.Body.Close()
			break
		}
		var ins server.InsertResponse
		derr := json.NewDecoder(resp.Body).Decode(&ins)
		resp.Body.Close()
		if derr != nil || ins.Accepted != len(keys) {
			t.Fatalf("insert %d: accepted %d, decode err %v", it, ins.Accepted, derr)
		}
		acked = append(acked, keys...)
	}
	if degradedStatus == 0 {
		t.Fatal("injected fsync failure never surfaced")
	}
	if degradedStatus != http.StatusServiceUnavailable || retryAfter == "" {
		t.Fatalf("degrading insert: status %d, Retry-After %q; want 503 with a hint",
			degradedStatus, retryAfter)
	}
	if len(acked) == 0 {
		t.Fatal("no batch was acked before the injected failure")
	}

	// Reads keep serving from memory while the filter is read-only.
	var q server.QueryResponse
	post(t, url+"/filters/deg/query", server.QueryRequest{Keys: acked}, &q)
	for i, hit := range q.Results {
		if !hit {
			t.Fatalf("degraded read lost acked key %d", acked[i])
		}
	}

	// Further writes are rejected fast: a poisoned WAL is never retried.
	resp, err := http.Post(url+"/filters/deg/insert", "application/json",
		strings.NewReader(`{"keys":[424242],"attrs":[[0]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write while degraded: status %d, want 503", resp.StatusCode)
	}

	// /readyz stays ready (reads serve) and names the degraded filter.
	rz, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rzBody struct {
		Degraded []store.DegradedFilter `json:"degraded_filters"`
	}
	derr := json.NewDecoder(rz.Body).Decode(&rzBody)
	rz.Body.Close()
	if rz.StatusCode != http.StatusOK || derr != nil {
		t.Fatalf("/readyz while degraded: status %d, decode err %v", rz.StatusCode, derr)
	}
	if len(rzBody.Degraded) != 1 || rzBody.Degraded[0].Name != "deg" || rzBody.Degraded[0].Reason != "enospc" {
		t.Fatalf("/readyz degraded_filters = %+v, want one enospc entry for %q", rzBody.Degraded, "deg")
	}

	// SIGKILL in degraded mode, then recover on a healthy filesystem.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	cmd.Wait()

	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer st.Close()
	if n := st.DegradedCount(); n != 0 {
		t.Fatalf("recovered store still degraded (%d filters)", n)
	}
	fl := st.Get("deg")
	if fl == nil {
		t.Fatal("filter not recovered")
	}
	sf := fl.Live()
	for _, k := range acked {
		if !sf.QueryKey(k) {
			t.Fatalf("acked key %d lost across degraded SIGKILL (%d acked)", k, len(acked))
		}
	}
	// Write availability is back: recovery opened a fresh WAL, not the
	// poisoned one.
	if err := fl.Insert(987654321, []uint64{1}); err != nil {
		t.Fatalf("post-recovery insert: %v", err)
	}
	if !fl.Live().QueryKey(987654321) {
		t.Fatal("post-recovery insert not visible")
	}
	t.Logf("recovered %d acked keys after degraded-mode SIGKILL: %+v",
		len(acked), st.RecoveryStats())
}
