package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ccf/internal/core"
	"ccf/internal/shard"
	"ccf/internal/simd"
	"ccf/internal/store"
)

// benchGrowCmd is `ccfd bench grow`: it drives one filter from its
// initial sizing through two-plus capacity doublings under the elastic
// ladder, folds it back to a single right-sized level, and records
// batched query ns/key at each phase — before growth, mid-ladder, after
// the fold, and against a filter sized correctly from the start. The
// records land in BENCH_serve.json alongside the serving benchmarks, so
// the cost of outgrowing a sizing (and of folding back) is part of the
// tracked perf trajectory.
func benchGrowCmd(args []string) error {
	fs := flag.NewFlagSet("bench grow", flag.ExitOnError)
	capacity := fs.Int("capacity", 50000, "initial filter capacity N; the run inserts 6N rows (two level doublings)")
	batch := fs.Int("batch", 1024, "keys per batched call")
	shards := fs.Int("shards", 1, "shard count")
	queries := fs.Int("queries", 1<<21, "query probes per phase measurement")
	seed := fs.Int64("seed", 1, "workload and hashing seed")
	out := fs.String("out", "BENCH_serve.json", "JSON results path, merged with existing records (empty = skip)")
	dir := fs.String("dir", "", "directory for the throwaway durable store (empty = temp)")
	fs.Parse(args)
	if *capacity < 1 || *batch < 1 || *queries < 1 || *shards < 1 {
		return fmt.Errorf("-capacity, -batch, -queries and -shards must be at least 1")
	}
	results, err := runBenchGrow(growConfig{
		capacity: *capacity, batch: *batch, shards: *shards,
		queries: *queries, seed: *seed, dir: *dir,
	}, os.Stdout)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := mergeGrowRecords(*out, results); err != nil {
			return err
		}
		fmt.Printf("merged %d grow records into %s\n", len(results), *out)
	}
	return nil
}

type growConfig struct {
	capacity int
	batch    int
	shards   int
	queries  int
	seed     int64
	dir      string
}

// mergeGrowRecords rewrites path with earlier grow records replaced by
// the new ones, keeping every other benchmark record in place.
func mergeGrowRecords(path string, grow []BenchResult) error {
	var existing []BenchResult
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &existing); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	merged := existing[:0]
	for _, r := range existing {
		if r.Op != "grow-query" && r.Op != "grow-insert" {
			merged = append(merged, r)
		}
	}
	merged = append(merged, grow...)
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// growKeys builds the deterministic row set of a grow run.
func growKeys(n int, seed int64) ([]uint64, [][]uint64) {
	keys := make([]uint64, n)
	attrs := make([][]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)*2654435761 + uint64(seed)
		attrs[i] = []uint64{uint64(i % 8), uint64(i % 5)}
	}
	return keys, attrs
}

// measureQueryNs probes the first rows inserted keys in batches and
// returns ns/key (single client: the phases are compared against each
// other, not against the multi-client serving numbers).
func measureQueryNs(sf *shard.ShardedFilter, keys []uint64, rows, queries, batch int, pred core.Predicate) float64 {
	if batch > rows {
		batch = rows // tiny -capacity runs: probe the whole row set per call
	}
	span := rows - batch + 1
	out := make([]bool, 0, batch)
	start := time.Now()
	done := 0
	for done < queries {
		lo := (done * batch) % span
		end := lo + batch
		out = sf.QueryBatchInto(out[:0], keys[lo:end], pred)
		done += batch
	}
	return float64(time.Since(start).Nanoseconds()) / float64(done)
}

func runBenchGrow(cfg growConfig, w io.Writer) ([]BenchResult, error) {
	n := cfg.capacity
	// 4N already proves the acceptance bar (a capacity-N filter absorbing
	// ≥ 4N rows with zero failures); 6N pushes the ladder through a second
	// doubling so the measured "grown" phase is a genuinely tall ladder.
	total := 6 * n
	if cfg.queries < cfg.batch {
		cfg.queries = cfg.batch
	}
	keys, attrs := growKeys(total, cfg.seed)
	pred := core.And(core.Eq(0, 1))

	dir, err := os.MkdirTemp(cfg.dir, "ccfd-bench-grow-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(store.Options{Dir: dir, Fsync: store.FsyncInterval})
	if err != nil {
		return nil, err
	}
	defer st.Close()

	params := core.Params{Variant: core.VariantChained, NumAttrs: 2, Capacity: n, Seed: uint64(cfg.seed)}
	sf, err := shard.New(shard.Options{
		Shards: cfg.shards, Workers: 1,
		AutoGrow: core.LadderOptions{MaxLevels: 6, GrowthFactor: 2},
		Params:   params,
	})
	if err != nil {
		return nil, err
	}
	fl, err := st.Create("grow", sf)
	if err != nil {
		return nil, err
	}

	mkResult := func(phase string, nsPerKey float64, rows int) BenchResult {
		lst := fl.Live().Stats()
		return BenchResult{
			Op: "grow-query", Impl: "ladder", Variant: params.Variant.String(),
			Shards: cfg.shards, Batch: cfg.batch,
			NsPerOp: nsPerKey, QPS: 1e9 / nsPerKey,
			Cores: runtime.NumCPU(), Goarch: runtime.GOARCH,
			CPUFeatures: simd.Features(), ProbeEngine: simd.Active(),
			Keys: n, Ops: cfg.queries,
			Phase: phase, Levels: lst.MaxLevels, Rows: rows,
		}
	}
	var results []BenchResult

	// insertTo pushes the durable row count up to m, returning how many
	// rows failed outright (must be zero under the elastic ladder).
	inserted := 0
	var errBuf []error
	insertTo := func(m int) (int, error) {
		failed := 0
		for inserted < m {
			end := inserted + cfg.batch
			if end > m {
				end = m
			}
			errs, err := fl.InsertBatchInto(errBuf[:0], keys[inserted:end], attrs[inserted:end])
			errBuf = errs
			if err != nil {
				return failed, err
			}
			for _, e := range errs {
				if shard.StatusOf(e) == shard.RowFull {
					failed++
				}
			}
			inserted = end
		}
		return failed, nil
	}

	// Phase 1: the filter as sized — fill to 70% of N and measure.
	pre := int(0.7 * float64(n))
	if _, err := insertTo(pre); err != nil {
		return nil, err
	}
	ns := measureQueryNs(fl.Live(), keys, pre, cfg.queries, cfg.batch, pred)
	results = append(results, mkResult("pre", ns, pre))

	// Phase 2: overrun the sizing 4× (two-plus doublings) and measure
	// while the ladder is tall. Timed too, so the record shows what
	// inserts cost while levels are opening.
	insStart := time.Now()
	failed, err := insertTo(total)
	if err != nil {
		return nil, err
	}
	insNs := float64(time.Since(insStart).Nanoseconds()) / float64(total-pre)
	if failed > 0 {
		return nil, fmt.Errorf("bench grow: %d rows failed with the elastic ladder (want 0)", failed)
	}
	ir := mkResult("grown", insNs, total)
	ir.Op = "grow-insert"
	ir.QPS = 1e9 / insNs
	results = append(results, ir)
	ns = measureQueryNs(fl.Live(), keys, total, cfg.queries, cfg.batch, pred)
	results = append(results, mkResult("grown", ns, total))

	// Phase 3: fold back to one right-sized level and measure again. The
	// fold schedules a background checkpoint of the folded snapshot; run
	// it to completion first (Checkpoint serializes on the same mutex and
	// no-ops if the background worker already got it) so the measurement
	// doesn't time the checkpointer instead of the query path.
	if err := fl.Fold(); err != nil {
		return nil, err
	}
	if err := fl.Checkpoint(); err != nil {
		return nil, err
	}
	ns = measureQueryNs(fl.Live(), keys, total, cfg.queries, cfg.batch, pred)
	folded := mkResult("folded", ns, total)
	results = append(results, folded)

	// Baseline: a filter sized for 4N from the start, same rows.
	right, err := shard.New(shard.Options{Shards: cfg.shards, Workers: 1, Params: core.Params{
		Variant: params.Variant, NumAttrs: 2, Capacity: total, Seed: uint64(cfg.seed),
	}})
	if err != nil {
		return nil, err
	}
	var rerrs []error
	for lo := 0; lo < total; lo += cfg.batch {
		end := lo + cfg.batch
		if end > total {
			end = total
		}
		rerrs = right.InsertBatchInto(rerrs[:0], keys[lo:end], attrs[lo:end])
	}
	ns = measureQueryNs(right, keys, total, cfg.queries, cfg.batch, pred)
	base := BenchResult{
		Op: "grow-query", Impl: "rightsized", Variant: params.Variant.String(),
		Shards: cfg.shards, Batch: cfg.batch, NsPerOp: ns, QPS: 1e9 / ns,
		Cores: runtime.NumCPU(), Goarch: runtime.GOARCH,
		CPUFeatures: simd.Features(), ProbeEngine: simd.Active(),
		Keys: n, Ops: cfg.queries,
		Phase: "rightsized", Levels: 1, Rows: total,
	}
	results = append(results, base)

	if w != nil {
		fmt.Fprintf(w, "%-12s %-11s %7s %7s %12s %9s\n",
			"op", "phase", "levels", "rows", "ns/key", "vs-right")
		for _, r := range results {
			fmt.Fprintf(w, "%-12s %-11s %7d %7d %12.1f %8.1f%%\n",
				r.Op, r.Phase, r.Levels, r.Rows, r.NsPerOp,
				(r.NsPerOp/base.NsPerOp-1)*100)
		}
		fmt.Fprintf(w, "%d fold(s); post-fold query is %.1f%% off the right-sized baseline (acceptance: within 10%%)\n",
			fl.FoldCount(), (folded.NsPerOp/base.NsPerOp-1)*100)
	}
	return results, nil
}
