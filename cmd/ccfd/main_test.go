package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ccf/internal/core"
	"ccf/internal/obs"
	"ccf/internal/server"
)

// startDaemon runs the real serve loop on an ephemeral port and returns
// its base URL plus a shutdown function that waits for graceful exit.
func startDaemon(t *testing.T, cfg serveConfig) (string, func() error) {
	t.Helper()
	if cfg.cacheCap == 0 {
		cfg.cacheCap = 16
	}
	cfg.quiet = true
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- serveUntilDone(ctx, ln, cfg) }()
	url := "http://" + ln.Addr().String()
	// Wait for readiness, not liveness: /readyz flips to 200 only after
	// store recovery has attached the filter catalog, so tests that query
	// right after a restart don't race the replay.
	for i := 0; ; i++ {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				break
			}
			err = fmt.Errorf("readyz: %d", code)
		}
		if i > 100 {
			t.Fatalf("daemon never became ready: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return url, func() error {
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(10 * time.Second):
			return fmt.Errorf("shutdown timed out")
		}
	}
}

func post(t *testing.T, url string, body any, out any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("POST %s: unmarshal %q: %v", url, data, err)
		}
	}
}

// TestDaemonServesConcurrentBatches boots ccfd's serve loop and drives
// concurrent batched inserts and queries over real HTTP, then shuts down
// gracefully — the daemon-level -race exercise.
func TestDaemonServesConcurrentBatches(t *testing.T) {
	url, shutdown := startDaemon(t, serveConfig{})

	req, _ := http.NewRequest("PUT", url+"/filters/jobs", bytes.NewReader([]byte(
		`{"variant":"chained","shards":4,"capacity":65536,"num_attrs":2}`)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("create filter: %v %v", err, resp.Status)
	}
	resp.Body.Close()

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 5; it++ {
				keys := make([]uint64, 64)
				attrs := make([][]uint64, 64)
				for i := range keys {
					keys[i] = uint64(g*10000+it*64+i)*7919 + 3
					attrs[i] = []uint64{uint64(i % 4), uint64(i % 3)}
				}
				var ins server.InsertResponse
				post(t, url+"/filters/jobs/insert", server.InsertRequest{Keys: keys, Attrs: attrs}, &ins)
				if ins.Accepted != 64 {
					t.Errorf("writer %d: accepted %d", g, ins.Accepted)
					return
				}
				var q server.QueryResponse
				post(t, url+"/filters/jobs/query", server.QueryRequest{
					Keys:      keys,
					Predicate: []server.CondJSON{{Attr: 0, Values: []uint64{0, 1, 2, 3}}},
					ViaView:   it%2 == 1,
				}, &q)
				for i, ok := range q.Results {
					if !ok {
						t.Errorf("writer %d: lost key %d", g, keys[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	var st server.StatsResponse
	resp, err = http.Get(url + "/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	resp.Body.Close()
	if got := st.Filters["jobs"].Rows; got != 3*5*64 {
		t.Fatalf("rows = %d, want %d", got, 3*5*64)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestPprofEndpoint covers the -pprof-addr satellite: the profiling
// handlers come up on their own listener and answer, and closing the
// listener tears them down.
func TestPprofEndpoint(t *testing.T) {
	ln, addr, err := startPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d", resp.StatusCode)
	}
	if b, _ := io.ReadAll(resp.Body); len(b) == 0 {
		t.Fatal("pprof cmdline: empty body")
	}
}

// TestBenchEmitsJSONRecords runs a miniature bench pass and checks the
// machine-readable records cover both implementations and every shard
// count, with sane rates.
func TestBenchEmitsJSONRecords(t *testing.T) {
	cfg := benchConfig{
		keys: 2000, queries: 8000, batch: 256, shards: []int{1, 4},
		variant: core.VariantChained, alpha: 1.1, clients: 2, seed: 1,
		durableFsync: "interval", durableDir: t.TempDir(),
		contendedClients: 4, readFrac: 0.95,
		metrics: true,
	}
	var buf bytes.Buffer
	results, err := runBench(cfg, &buf)
	if err != nil {
		t.Fatalf("runBench: %v", err)
	}
	// Per shard count: insert + query (Zipf + uniform + traced) +
	// 2 contended (seqlock/rlock) + wal.
	if len(results) != 2+7*len(cfg.shards) {
		t.Fatalf("got %d records", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		seen[fmt.Sprintf("%s/%s/%d", r.Op, r.Impl, r.Shards)] = true
		// The uniform pass replays the committed microbench, which runs
		// the packed default variant on its own filter.
		wantVariant := "Chained"
		if r.Impl == "sharded-uniform" {
			wantVariant = "Plain"
		}
		if r.QPS <= 0 || r.NsPerOp <= 0 || r.Cores < 1 || r.Variant != wantVariant {
			t.Fatalf("bad record: %+v", r)
		}
		if r.ProbeEngine == "" || r.Goarch == "" {
			t.Fatalf("record missing machine context: %+v", r)
		}
		if r.Impl == "sharded+wal" && r.Fsync != "interval" {
			t.Fatalf("durable record missing fsync policy: %+v", r)
		}
		if r.Op == "mixed" && (r.Clients != 4 || r.ReadFrac != 0.95) {
			t.Fatalf("contended record missing clients/read_frac: %+v", r)
		}
		// -metrics folds scrape summaries in: the durable pass must show
		// WAL traffic and fsyncs, and the forced-RLock contended pass
		// counts every read as a fallback.
		if r.Impl == "sharded+wal" && (r.WALAppendBytes == 0 || r.FsyncCount == 0) {
			t.Fatalf("durable record missing scraped WAL metrics: %+v", r)
		}
		if r.Impl == "sharded-rlock" && r.SeqlockFallbacks == 0 {
			t.Fatalf("rlock contended record shows no fallbacks: %+v", r)
		}
		// The traced pass must attribute sampled request time to phases:
		// at minimum the root request span and the per-shard probes.
		if r.Impl == "sharded+trace" {
			if len(r.PhaseAttribution) == 0 {
				t.Fatalf("traced record missing phase attribution: %+v", r)
			}
			for _, phase := range []string{"request", "shard_probe"} {
				st, ok := r.PhaseAttribution[phase]
				if !ok || st.Count == 0 {
					t.Fatalf("traced record missing %s attribution: %+v", phase, r.PhaseAttribution)
				}
			}
		}
	}
	for _, want := range []string{"insert/sync/1", "query/sync/1", "insert/sharded/1",
		"query/sharded/1", "insert/sharded/4", "query/sharded/4",
		"query/sharded-uniform/1", "query/sharded-uniform/4",
		"query/sharded+trace/1", "query/sharded+trace/4",
		"insert/sharded+wal/1", "insert/sharded+wal/4",
		"mixed/sharded/1", "mixed/sharded-rlock/1",
		"mixed/sharded/4", "mixed/sharded-rlock/4"} {
		if !seen[want] {
			t.Fatalf("missing record %s (have %v)", want, seen)
		}
	}
	// Records round-trip through JSON with the documented field names.
	data, err := json.Marshal(results)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for _, field := range []string{"op", "impl", "variant", "shards", "batch", "ns_per_op", "qps", "cores"} {
		if _, ok := decoded[0][field]; !ok {
			t.Fatalf("JSON record missing %q: %s", field, data)
		}
	}
	if buf.Len() == 0 {
		t.Fatal("no table output")
	}
}

// lockedBuf is a goroutine-safe log sink for daemon tests.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDaemonMetricsAndReadyz is the daemon-level observability smoke:
// boot durable, verify /readyz flips ready with the recovery outcome,
// drive traffic, and check /metrics (on the main listener AND the
// private -metrics-addr listener) serves valid exposition text spanning
// every layer. Shutdown must land the final store-closed summary in the
// structured log after the WAL counters are final.
func TestDaemonMetricsAndReadyz(t *testing.T) {
	// Reserve a port for the private metrics listener.
	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	metricsAddr := mln.Addr().String()
	mln.Close()

	logs := &lockedBuf{}
	url, shutdown := startDaemon(t, serveConfig{
		dataDir:     t.TempDir(),
		metricsAddr: metricsAddr,
		logFormat:   "json",
		logW:        logs,
	})

	// Readiness reflects completed recovery.
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d (%s)", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"ready":true`)) {
		t.Fatalf("/readyz body = %s", body)
	}

	req, _ := http.NewRequest("PUT", url+"/filters/obs", bytes.NewReader([]byte(
		`{"variant":"chained","shards":2,"capacity":4096,"num_attrs":2}`)))
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("create filter: %v %v", err, resp.Status)
	} else {
		resp.Body.Close()
	}
	var ins server.InsertResponse
	post(t, url+"/filters/obs/insert", server.InsertRequest{
		Keys: []uint64{1, 2, 3}, Attrs: [][]uint64{{0, 1}, {1, 0}, {2, 1}},
	}, &ins)
	if ins.Accepted != 3 {
		t.Fatalf("accepted %d", ins.Accepted)
	}

	for _, base := range []string{url, "http://" + metricsAddr} {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("GET %s/metrics: %v", base, err)
		}
		text, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s/metrics = %d", base, resp.StatusCode)
		}
		if err := obs.ValidateExposition(string(text)); err != nil {
			t.Fatalf("%s/metrics invalid: %v", base, err)
		}
		for _, want := range []string{
			"ccfd_http_requests_total",
			`ccfd_filter_rows{filter="obs"} 3`,
			"ccfd_wal_append_frames_total",
			"ccfd_recovery_filters 0",
		} {
			if !strings.Contains(string(text), want) {
				t.Errorf("%s/metrics missing %q", base, want)
			}
		}
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// The final summary logs after the store is flushed and closed, with
	// the WAL counters covering everything that reached disk.
	out := logs.String()
	closedAt := strings.Index(out, `"msg":"store closed"`)
	downAt := strings.Index(out, `"msg":"shut down"`)
	if closedAt < 0 || downAt < 0 || closedAt > downAt {
		t.Fatalf("shutdown log order wrong (closed@%d, down@%d):\n%s", closedAt, downAt, out)
	}
	if !strings.Contains(out[closedAt:], `"wal_append_bytes"`) {
		t.Errorf("store-closed summary missing WAL counters:\n%s", out)
	}
}
