// Command ccfgen generates the synthetic IMDB dataset (the substitute for
// the paper's pre-2017 IMDB snapshot, §10.3) and either prints its Table
// 2/3 statistics or dumps the tables as CSV files for external use.
//
// Usage:
//
//	ccfgen [-scale 0.01] [-seed 1] [-out DIR] [-stats]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"ccf/internal/imdb"
	"ccf/internal/stats"
)

func main() {
	scale := flag.Float64("scale", 0.01, "scale factor in (0,1]")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "directory to write one CSV per table (optional)")
	statsOnly := flag.Bool("stats", true, "print Table 2/3 statistics")
	flag.Parse()

	ds, err := imdb.Generate(*scale, *seed)
	if err != nil {
		fatal(err)
	}
	if *statsOnly {
		summary, err := ds.Summarize()
		if err != nil {
			fatal(err)
		}
		t := stats.NewTable("table", "column", "rows", "cardinality", "avg dupes", "max dupes")
		for _, s := range summary {
			t.AddRow(s.Table, s.Column, s.Rows, s.Cardinality, s.AvgDupes, s.MaxDupes)
		}
		fmt.Printf("synthetic IMDB at scale %.4f (%d movies)\n%s", *scale, ds.NumMovies, t)
	}
	if *out == "" {
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range imdb.TableNames() {
		tab, err := ds.Table(name)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		w := csv.NewWriter(f)
		header := []string{"movie_id"}
		for _, c := range tab.Cols {
			header = append(header, c.Name)
		}
		if err := w.Write(header); err != nil {
			fatal(err)
		}
		rec := make([]string, len(header))
		for row := range tab.Keys {
			rec[0] = strconv.FormatUint(uint64(tab.Keys[row]), 10)
			for ci, c := range tab.Cols {
				rec[ci+1] = strconv.FormatInt(c.Vals[row], 10)
			}
			if err := w.Write(rec); err != nil {
				fatal(err)
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, tab.NumRows())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccfgen:", err)
	os.Exit(1)
}
