// Command ccffilter builds, stores, inspects and queries conditional
// cuckoo filters — the paper's deployment model of pre-built, stored
// sketches (§3) as a command-line workflow.
//
// Build a filter from a CSV (first column = key, remaining columns =
// attributes; a header row is skipped automatically):
//
//	ccffilter build -in rows.csv -out table.ccf -variant chained
//
// Inspect it:
//
//	ccffilter info -filter table.ccf
//
// Query it (attribute conditions as attrIndex=value, repeatable):
//
//	ccffilter query -filter table.ccf -key 42 -where 0=4 -where 1=1
//
// The CSVs produced by `ccfgen -out` feed directly into build.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ccf"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccffilter:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  ccffilter build -in rows.csv -out table.ccf [-variant chained|bloom|mixed|plain]
                  [-keybits 12] [-attrbits 8] [-bloombits 16] [-seed 1]
  ccffilter info  -filter table.ccf
  ccffilter query -filter table.ccf -key K [-where attr=value]...
`)
}

func parseVariant(s string) (ccf.Variant, error) {
	switch strings.ToLower(s) {
	case "chained":
		return ccf.Chained, nil
	case "bloom":
		return ccf.Bloom, nil
	case "mixed":
		return ccf.Mixed, nil
	case "plain":
		return ccf.Plain, nil
	default:
		return 0, fmt.Errorf("unknown variant %q", s)
	}
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	in := fs.String("in", "", "input CSV: key, attr1, attr2, ...")
	out := fs.String("out", "", "output filter file")
	variantName := fs.String("variant", "chained", "chained|bloom|mixed|plain")
	keyBits := fs.Int("keybits", 12, "key fingerprint bits")
	attrBits := fs.Int("attrbits", 8, "attribute fingerprint bits")
	bloomBits := fs.Int("bloombits", 16, "per-entry Bloom bits (bloom variant)")
	seed := fs.Uint64("seed", 1, "hash seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("build requires -in and -out")
	}
	variant, err := parseVariant(*variantName)
	if err != nil {
		return err
	}
	rows, numAttrs, err := readRows(*in)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("%s: no data rows", *in)
	}
	f, err := ccf.New(ccf.Params{
		Variant: variant, KeyBits: *keyBits, AttrBits: *attrBits,
		BloomBits: *bloomBits, NumAttrs: numAttrs,
		Capacity: len(rows), Seed: *seed,
	})
	if err != nil {
		return err
	}
	discarded := 0
	for _, r := range rows {
		if err := f.Insert(r.key, r.attrs); err != nil {
			if err == ccf.ErrChainLimit {
				discarded++
				continue
			}
			return fmt.Errorf("inserting key %d: %w", r.key, err)
		}
	}
	blob, err := f.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("built %s filter: %d rows (%d discarded at chain limit), %d entries, load %.2f\n",
		variant, f.Rows(), discarded, f.OccupiedEntries(), f.LoadFactor())
	fmt.Printf("wrote %s (%d bytes; packed sketch %d bits)\n", *out, len(blob), f.SizeBits())
	return nil
}

type csvRow struct {
	key   uint64
	attrs []uint64
}

func readRows(path string) ([]csvRow, int, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer fd.Close()
	r := csv.NewReader(fd)
	r.ReuseRecord = true
	var rows []csvRow
	numAttrs := -1
	line := 0
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, err
		}
		line++
		if len(rec) < 2 {
			return nil, 0, fmt.Errorf("%s:%d: need at least key and one attribute", path, line)
		}
		key, err := strconv.ParseUint(strings.TrimSpace(rec[0]), 10, 64)
		if err != nil {
			if line == 1 {
				continue // header row
			}
			return nil, 0, fmt.Errorf("%s:%d: bad key %q", path, line, rec[0])
		}
		attrs := make([]uint64, len(rec)-1)
		for i, cell := range rec[1:] {
			v, err := strconv.ParseUint(strings.TrimSpace(cell), 10, 64)
			if err != nil {
				return nil, 0, fmt.Errorf("%s:%d: bad attribute %q", path, line, cell)
			}
			attrs[i] = v
		}
		if numAttrs == -1 {
			numAttrs = len(attrs)
		} else if len(attrs) != numAttrs {
			return nil, 0, fmt.Errorf("%s:%d: %d attributes, expected %d", path, line, len(attrs), numAttrs)
		}
		rows = append(rows, csvRow{key: key, attrs: attrs})
	}
	return rows, numAttrs, nil
}

func loadFilter(path string) (*ccf.Filter, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f ccf.Filter
	if err := f.UnmarshalBinary(blob); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	path := fs.String("filter", "", "filter file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("info requires -filter")
	}
	f, err := loadFilter(*path)
	if err != nil {
		return err
	}
	p := f.Params()
	fmt.Printf("variant:        %s\n", p.Variant)
	fmt.Printf("rows:           %d (%d discarded)\n", f.Rows(), f.Discarded())
	fmt.Printf("entries:        %d of %d (load %.3f)\n", f.OccupiedEntries(), f.Capacity(), f.LoadFactor())
	fmt.Printf("geometry:       m=%d buckets × b=%d\n", f.NumBuckets(), p.BucketSize)
	fmt.Printf("fingerprints:   |κ|=%d, |α|=%d × %d attrs\n", p.KeyBits, p.AttrBits, p.NumAttrs)
	fmt.Printf("duplicates:     d=%d, Lmax=%d (0 = unlimited)\n", p.MaxDupes, p.MaxChain)
	fmt.Printf("packed size:    %d bits (%.1f KiB)\n", f.SizeBits(), float64(f.SizeBits())/8/1024)
	fmt.Printf("key FPR bound:  %.5f\n", f.KeyFPRBound())
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	path := fs.String("filter", "", "filter file")
	key := fs.Uint64("key", 0, "key to query")
	var wheres whereFlags
	fs.Var(&wheres, "where", "attribute condition attr=value (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("query requires -filter")
	}
	f, err := loadFilter(*path)
	if err != nil {
		return err
	}
	var pred ccf.Predicate
	for _, w := range wheres {
		pred = append(pred, ccf.Eq(w.attr, w.value))
	}
	ok, err := f.QueryErr(*key, pred)
	if err != nil {
		return err
	}
	if ok {
		fmt.Println("maybe (no false negatives: a matching row may exist)")
	} else {
		fmt.Println("no (definitely no matching row)")
	}
	return nil
}

type whereCond struct {
	attr  int
	value uint64
}

type whereFlags []whereCond

func (w *whereFlags) String() string { return fmt.Sprintf("%v", []whereCond(*w)) }

func (w *whereFlags) Set(s string) error {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want attr=value, got %q", s)
	}
	attr, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("bad attribute index %q", parts[0])
	}
	value, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return fmt.Errorf("bad value %q", parts[1])
	}
	*w = append(*w, whereCond{attr: attr, value: value})
	return nil
}
