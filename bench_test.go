// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus the raw operation throughput of §10.8. Each experiment benchmark
// runs the corresponding harness (internal/experiments) at a trimmed scale;
// run `go run ./cmd/ccfbench <id>` for full-scale output with the printed
// tables. The paper's reference throughput is ≥1M matches/s single-threaded
// (§10.8); BenchmarkQuery* report the equivalent for this implementation.
package ccf_test

import (
	"fmt"
	"testing"

	"ccf"
	"ccf/internal/experiments"
)

func benchCfg() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.W = nil // discard printed tables during benchmarking
	return cfg
}

func BenchmarkTable1Sizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Dupes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2FPRBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3EntryPrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4LoadFactor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5BitEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6ReductionFactors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7BinnedBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8SizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9JoinCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10RelativeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateRF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Aggregate(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// Raw operation throughput (§10.8): the paper's single-threaded C++
// implementation processed ≥1M matches per second.

func newLoadedFilter(b *testing.B, v ccf.Variant) *ccf.Filter {
	b.Helper()
	f, err := ccf.New(ccf.Params{Variant: v, NumAttrs: 2, Capacity: 1 << 18, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	for k := uint64(0); k < 1<<17; k++ {
		if err := f.Insert(k, []uint64{k % 16, k % 7}); err != nil {
			b.Fatal(err)
		}
	}
	return f
}

func benchQuery(b *testing.B, v ccf.Variant) {
	f := newLoadedFilter(b, v)
	pred := ccf.And(ccf.Eq(0, 3), ccf.Eq(1, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Query(uint64(i)&(1<<17-1), pred)
	}
}

func BenchmarkQueryChained(b *testing.B) { benchQuery(b, ccf.Chained) }
func BenchmarkQueryBloom(b *testing.B)   { benchQuery(b, ccf.Bloom) }
func BenchmarkQueryMixed(b *testing.B)   { benchQuery(b, ccf.Mixed) }

func BenchmarkQueryKeyOnly(b *testing.B) {
	f := newLoadedFilter(b, ccf.Chained)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.QueryKey(uint64(i))
	}
}

func benchInsert(b *testing.B, v ccf.Variant) {
	b.ReportAllocs()
	var f *ccf.Filter
	var err error
	attrs := []uint64{0, 0}
	for i := 0; i < b.N; i++ {
		if i&(1<<17-1) == 0 {
			b.StopTimer()
			f, err = ccf.New(ccf.Params{Variant: v, NumAttrs: 2, Capacity: 1 << 18, Seed: 42})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		k := uint64(i) & (1<<17 - 1)
		attrs[0], attrs[1] = k%16, k%7
		if err := f.Insert(k, attrs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertChained(b *testing.B) { benchInsert(b, ccf.Chained) }
func BenchmarkInsertBloom(b *testing.B)   { benchInsert(b, ccf.Bloom) }
func BenchmarkInsertMixed(b *testing.B)   { benchInsert(b, ccf.Mixed) }

func BenchmarkPredicateFilterExtraction(b *testing.B) {
	f := newLoadedFilter(b, ccf.Bloom)
	pred := ccf.And(ccf.Eq(0, 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.PredicateFilter(pred); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationCycleExtension(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "extension-on"
		if disabled {
			name = "extension-off"
		}
		b.Run(name, func(b *testing.B) {
			loads := 0.0
			for i := 0; i < b.N; i++ {
				f, err := ccf.New(ccf.Params{
					Variant: ccf.Chained, Buckets: 512, Seed: uint64(i),
					DisableCycleExtension: disabled,
				})
				if err != nil {
					b.Fatal(err)
				}
				for k := uint64(0); ; k++ {
					if err := f.Insert(k%64, []uint64{k}); err != nil {
						break
					}
				}
				loads += f.LoadFactor()
			}
			b.ReportMetric(loads/float64(b.N), "load@failure")
		})
	}
}

func BenchmarkAblationSmallValues(b *testing.B) {
	// Latency of the two attribute-fingerprint paths (exact small values
	// versus hashed); the FPR effect of the optimization is measured by
	// `ccfbench ablations`, which uses 4-bit fingerprints where collisions
	// are frequent enough to observe.
	for _, disabled := range []bool{false, true} {
		name := "smallvalues-on"
		if disabled {
			name = "smallvalues-off"
		}
		b.Run(name, func(b *testing.B) {
			f, err := ccf.New(ccf.Params{
				Variant: ccf.Chained, NumAttrs: 1, Capacity: 1 << 16,
				DisableSmallValueOpt: disabled, Seed: 3,
			})
			if err != nil {
				b.Fatal(err)
			}
			for k := uint64(0); k < 1<<15; k++ {
				if err := f.Insert(k, []uint64{k % 10}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := uint64(i) & (1<<15 - 1)
				sinkBool = f.Query(k, ccf.And(ccf.Eq(0, k%10)))
			}
		})
	}
}

func BenchmarkAblationAttrVsKeyBits(b *testing.B) {
	// §8.1: spending bits on the attribute sketch beats spending them on
	// the key fingerprint for predicate queries.
	cases := []struct {
		name              string
		keyBits, attrBits int
	}{
		{"k8a8", 8, 8},
		{"k12a4", 12, 4},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			f, err := ccf.New(ccf.Params{
				Variant: ccf.Chained, NumAttrs: 1,
				KeyBits: c.keyBits, AttrBits: c.attrBits,
				Capacity: 1 << 16, Seed: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			for k := uint64(0); k < 1<<15; k++ {
				if err := f.Insert(k, []uint64{k<<4 + 1<<40}); err != nil {
					b.Fatal(err)
				}
			}
			fp, probes := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := uint64(i) & (1<<15 - 1)
				if f.Query(k, ccf.And(ccf.Eq(0, k<<4+7+1<<40))) {
					fp++
				}
				probes++
			}
			b.ReportMetric(float64(fp)/float64(probes), "FPR")
		})
	}
}

var sinkBool bool

func BenchmarkThroughputReport(b *testing.B) {
	// Matches-per-second summary in the style of §10.8.
	f := newLoadedFilter(b, ccf.Chained)
	pred := ccf.And(ccf.Eq(0, 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBool = f.Query(uint64(i)&(1<<17-1), pred)
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "matches/s")
	}
	_ = fmt.Sprintf("%v", sinkBool)
}
