package ccf_test

import (
	"sync"
	"testing"

	"ccf"
)

// TestSyncFilterConcurrentFullSurface exercises SyncFilter's full
// surface from concurrent goroutines; run with -race. Unlike the basic
// insert/query interleave in ccf_test.go, readers here also extract
// predicate key-views (Algorithm 2) and marshal mid-write.
func TestSyncFilterConcurrentFullSurface(t *testing.T) {
	sf, err := ccf.NewSync(ccf.Params{NumAttrs: 2, Capacity: 1 << 15, Seed: 11})
	if err != nil {
		t.Fatalf("NewSync: %v", err)
	}
	const (
		writers = 4
		readers = 4
		perG    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := uint64(w*perG+i)*11400714819323198485 + 1
				if err := sf.Insert(k, []uint64{uint64(i % 6), uint64(i % 4)}); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			pred := ccf.And(ccf.Eq(0, uint64(r%6)))
			for i := 0; i < perG; i++ {
				k := uint64(r*perG+i)*11400714819323198485 + 1
				sf.Query(k, pred)
				sf.QueryKey(k)
				if i%100 == 0 {
					if _, err := sf.PredicateFilter(pred); err != nil {
						t.Errorf("PredicateFilter: %v", err)
						return
					}
					if _, err := sf.MarshalBinary(); err != nil {
						t.Errorf("MarshalBinary: %v", err)
						return
					}
					sf.LoadFactor()
					sf.SizeBits()
					sf.Rows()
				}
			}
		}(r)
	}
	wg.Wait()

	if got, want := sf.Rows(), writers*perG; got != want {
		t.Fatalf("Rows = %d, want %d", got, want)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perG; i++ {
			k := uint64(w*perG+i)*11400714819323198485 + 1
			if !sf.QueryKey(k) {
				t.Fatalf("key %d lost after concurrent run", k)
			}
		}
	}

	// The filter still round-trips after concurrent mutation.
	data, err := sf.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	restored, err := ccf.NewSync(ccf.Params{NumAttrs: 2})
	if err != nil {
		t.Fatalf("NewSync: %v", err)
	}
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if restored.Rows() != sf.Rows() {
		t.Fatalf("restored rows = %d, want %d", restored.Rows(), sf.Rows())
	}
}

// TestNewShardedPublicAPI sanity-checks the root-package sharded surface.
func TestNewShardedPublicAPI(t *testing.T) {
	s, err := ccf.NewSharded(ccf.ShardOptions{
		Shards: 4,
		Params: ccf.Params{NumAttrs: 1, Capacity: 1 << 12},
	})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	keys := []uint64{1, 2, 3}
	attrs := [][]uint64{{9}, {8}, {9}}
	for i, err := range s.InsertBatch(keys, attrs) {
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	got := s.QueryBatch([]uint64{1, 2, 3, 4}, ccf.And(ccf.Eq(0, 9)))
	if !got[0] || !got[2] {
		t.Fatalf("QueryBatch = %v", got)
	}
	var view *ccf.ShardedKeyView
	view, err = s.PredicateFilter(ccf.And(ccf.Eq(0, 9)))
	if err != nil || !view.Contains(1) {
		t.Fatalf("view: %v, contains(1)=%v", err, view.Contains(1))
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	restored, err := ccf.ShardedFromSnapshot(snap, 0)
	if err != nil || restored.Rows() != 3 {
		t.Fatalf("ShardedFromSnapshot: %v, rows=%d", err, restored.Rows())
	}
}
