package ccf

import "ccf/internal/shard"

// ShardedFilter partitions a filter across independent shards, each
// behind its own read-write lock, with batch insert/query entry points
// that group keys by shard. For mixed read/write traffic from many
// goroutines it replaces SyncFilter's single global lock; see
// internal/shard for the serving subsystem built on it and cmd/ccfd for
// the daemon.
type ShardedFilter = shard.ShardedFilter

// ShardOptions configures a ShardedFilter.
type ShardOptions = shard.Options

// ShardedKeyView is a sharded key-only predicate view (Algorithm 2).
type ShardedKeyView = shard.KeyView

// FrozenSet is the routed bundle of per-shard Frozen snapshots returned
// by ShardedFilter.Freeze.
type FrozenSet = shard.FrozenSet

// NewSharded returns a sharded filter configured by opts.
func NewSharded(opts ShardOptions) (*ShardedFilter, error) { return shard.New(opts) }

// ShardedFromSnapshot rebuilds a sharded filter from a
// ShardedFilter.Snapshot payload.
func ShardedFromSnapshot(data []byte, workers int) (*ShardedFilter, error) {
	return shard.FromSnapshot(data, workers)
}
