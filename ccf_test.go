package ccf_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"ccf"
)

func ExampleFilter() {
	f, err := ccf.New(ccf.Params{Variant: ccf.Chained, NumAttrs: 2, Capacity: 1024})
	if err != nil {
		panic(err)
	}
	// Rows: (movie id, role id, kind id).
	_ = f.Insert(101, []uint64{4, 1})
	_ = f.Insert(101, []uint64{2, 1})
	_ = f.Insert(202, []uint64{4, 7})

	fmt.Println(f.Query(101, ccf.And(ccf.Eq(0, 4))))               // role 4 for movie 101?
	fmt.Println(f.Query(202, ccf.And(ccf.Eq(0, 4), ccf.Eq(1, 1)))) // role 4 AND kind 1 for 202?
	fmt.Println(f.QueryKey(999))                                   // unknown movie
	// Output:
	// true
	// false
	// false
}

func TestPublicAPIEndToEnd(t *testing.T) {
	for _, v := range []ccf.Variant{ccf.Plain, ccf.Chained, ccf.Bloom, ccf.Mixed} {
		f, err := ccf.New(ccf.Params{Variant: v, NumAttrs: 1, Capacity: 2048, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 500; k++ {
			if err := f.Insert(k, []uint64{k % 6}); err != nil {
				t.Fatalf("%v: %v", v, err)
			}
		}
		for k := uint64(0); k < 500; k++ {
			if !f.Query(k, ccf.And(ccf.Eq(0, k%6))) {
				t.Fatalf("%v: false negative", v)
			}
		}
	}
}

func TestPublicErrors(t *testing.T) {
	f, err := ccf.New(ccf.Params{Variant: ccf.Chained, NumAttrs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Insert(1, []uint64{1}); !errors.Is(err, ccf.ErrAttrCount) {
		t.Fatalf("got %v, want ErrAttrCount", err)
	}
	if err := f.Delete(1, []uint64{1, 2}); !errors.Is(err, ccf.ErrUnsupported) {
		t.Fatalf("got %v, want ErrUnsupported", err)
	}
}

func TestPublicBinner(t *testing.T) {
	b, err := ccf.NewBinner(1880, 2019, 16)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ccf.New(ccf.Params{Variant: ccf.Chained, NumAttrs: 1, Capacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Insert(1, []uint64{b.Bin(1994)}); err != nil {
		t.Fatal(err)
	}
	if !f.Query(1, ccf.And(b.InRange(0, 1990, 2000))) {
		t.Fatal("range query false negative")
	}
}

func TestPublicDyadic(t *testing.T) {
	d, err := ccf.NewDyadic(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ccf.New(ccf.Params{Variant: ccf.Chained, NumAttrs: 1, AttrBits: 16, Capacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range d.IntervalIDs(37) {
		if err := f.Insert(9, []uint64{id}); err != nil {
			t.Fatal(err)
		}
	}
	if !f.Query(9, ccf.And(ccf.In(0, d.CoverRange(30, 40)...))) {
		t.Fatal("dyadic range false negative")
	}
}

func TestPublicSizing(t *testing.T) {
	mult := []int{1, 2, 50}
	p := ccf.Params{Variant: ccf.Chained}
	n := ccf.PredictEntries(ccf.Chained, mult, p)
	if n != 53 {
		t.Fatalf("PredictEntries = %d, want 53", n)
	}
	m := ccf.RecommendBuckets(n, 6, 0.75)
	if m == 0 || m&(m-1) != 0 {
		t.Fatalf("RecommendBuckets = %d", m)
	}
	if e := ccf.BitEfficiency(1000, 100, 0.01); e <= 0 {
		t.Fatalf("BitEfficiency = %v", e)
	}
}

func TestPredicateFilterPublic(t *testing.T) {
	f, err := ccf.New(ccf.Params{Variant: ccf.Bloom, NumAttrs: 1, Capacity: 1024, BloomBits: 32})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		if err := f.Insert(k, []uint64{k % 4}); err != nil {
			t.Fatal(err)
		}
	}
	view, err := f.PredicateFilter(ccf.And(ccf.Eq(0, 2)))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(2); k < 100; k += 4 {
		if !view.Contains(k) {
			t.Fatalf("view lost key %d", k)
		}
	}
	if view.SizeBits() >= f.SizeBits() {
		t.Fatal("key view should be smaller than the full filter")
	}
}

func TestMarshalPublicRoundTrip(t *testing.T) {
	f, err := ccf.New(ccf.Params{Variant: ccf.Mixed, NumAttrs: 1, Capacity: 512, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 200; k++ {
		if err := f.Insert(k, []uint64{k % 9}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g ccf.Filter
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 200; k++ {
		if !g.Query(k, ccf.And(ccf.Eq(0, k%9))) {
			t.Fatalf("round-trip false negative %d", k)
		}
	}
}

func TestSyncFilterConcurrent(t *testing.T) {
	s, err := ccf.NewSync(ccf.Params{Variant: ccf.Chained, NumAttrs: 1, Capacity: 1 << 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for k := uint64(0); k < 2000; k++ {
				if err := s.Insert(k*4+uint64(w), []uint64{k % 5}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
		go func() {
			defer wg.Done()
			for k := uint64(0); k < 4000; k++ {
				s.Query(k, ccf.And(ccf.Eq(0, k%5)))
				s.QueryKey(k)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.Rows() != 8000 {
		t.Fatalf("Rows = %d, want 8000", s.Rows())
	}
	for k := uint64(0); k < 2000; k++ {
		if !s.Query(k*4, ccf.And(ccf.Eq(0, k%5))) {
			t.Fatalf("false negative after concurrent load: %d", k*4)
		}
	}
	if s.LoadFactor() <= 0 || s.SizeBits() <= 0 {
		t.Fatal("accessors broken")
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ccf.NewSync(ccf.Params{Variant: ccf.Chained, NumAttrs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if s2.Rows() != 8000 {
		t.Fatal("sync round trip lost rows")
	}
	view, err := s2.PredicateFilter(ccf.And(ccf.Eq(0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	_ = view
	if err := s2.Delete(1, []uint64{1}); !errors.Is(err, ccf.ErrUnsupported) {
		t.Fatalf("sync delete: %v", err)
	}
	wrapped := ccf.WrapSync(mustNew(t))
	if wrapped.QueryKey(12345) {
		t.Fatal("fresh wrapped filter contains keys")
	}
}

func mustNew(t *testing.T) *ccf.Filter {
	t.Helper()
	f, err := ccf.New(ccf.Params{Variant: ccf.Chained, NumAttrs: 1})
	if err != nil {
		t.Fatal(err)
	}
	return f
}
