// Pushdown demonstrates predicate-only queries (Algorithm 2): given just a
// predicate, a CCF emits a plain key-membership filter for S_P — the set of
// keys with a matching row — which a downstream scan can apply without
// knowing anything about attributes. This is how one pre-built CCF replaces
// a whole family of per-predicate Bloom filters.
package main

import (
	"fmt"
	"log"

	"ccf"
)

func main() {
	// Build a CCF over (movie id, kind id) — think of it as the pre-built
	// sketch of the title table, stored by the warehouse.
	f, err := ccf.New(ccf.Params{
		Variant: ccf.Bloom, NumAttrs: 1, Capacity: 1 << 15, BloomBits: 24,
	})
	if err != nil {
		log.Fatal(err)
	}
	const movies = 10000
	for id := uint64(1); id <= movies; id++ {
		kind := id%6 + 1
		if err := f.Insert(id, []uint64{kind}); err != nil {
			log.Fatal(err)
		}
	}

	// A query arrives with the predicate kind_id = 3. Extract the key-only
	// filter for exactly that subset.
	view, err := f.PredicateFilter(ccf.And(ccf.Eq(0, 3)))
	if err != nil {
		log.Fatal(err)
	}

	// The view now behaves like a cuckoo filter for S_{kind=3}: a
	// downstream scan of cast_info can drop rows whose movie id misses.
	var kept, dropped, wrong int
	for id := uint64(1); id <= movies; id++ {
		in := id%6+1 == 3
		got := view.Contains(id)
		switch {
		case got && in:
			kept++
		case !got && !in:
			dropped++
		case got && !in:
			wrong++ // false positive: costs work, never correctness
		default:
			panic("false negative — impossible by construction")
		}
	}
	fmt.Printf("predicate kind_id = 3 over %d movies:\n", movies)
	fmt.Printf("  correctly kept:    %d\n", kept)
	fmt.Printf("  correctly dropped: %d\n", dropped)
	fmt.Printf("  false positives:   %d (%.2f%%)\n", wrong, 100*float64(wrong)/float64(movies))
	fmt.Printf("  view size: %.1f KiB (full CCF: %.1f KiB)\n",
		float64(view.SizeBits())/8/1024, float64(f.SizeBits())/8/1024)

	// Chained CCFs support the same operation via tombstoned views — the
	// chain structure is preserved so lookups stay correct (§6.2).
	cf, err := ccf.New(ccf.Params{Variant: ccf.Chained, NumAttrs: 1, Capacity: 1 << 15})
	if err != nil {
		log.Fatal(err)
	}
	for id := uint64(1); id <= movies; id++ {
		for d := uint64(0); d < 1+id%4; d++ { // duplicate keys, chained
			if err := cf.Insert(id, []uint64{d}); err != nil {
				log.Fatal(err)
			}
		}
	}
	cview, err := cf.PredicateFilter(ccf.And(ccf.Eq(0, 3)))
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	for id := uint64(1); id <= movies; id++ {
		if cview.Contains(id) {
			hits++
		}
	}
	fmt.Printf("\nchained view (attribute 3 exists only for ids with ≥4 rows): %d of %d keys match\n",
		hits, movies)
}
