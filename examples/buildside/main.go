// Buildside demonstrates the paper's §3 motivation end to end: pre-built
// conditional cuckoo filters applied to the BUILD side of a hash join
// shrink the hash table — "smaller hash tables which do not spill data to
// disk" — without changing the join result.
//
// The pipeline joins title ⋈ cast_info on movie id with predicates
// t.kind_id = 1 and ci.role_id = 4, building the hash table on title. A
// pre-built CCF over cast_info lets the build scan drop title rows whose
// movie has no role-4 cast row at all.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ccf"
	"ccf/internal/engine"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	const movies = 30000

	// title: one row per movie, kind_id 1..6.
	title := &engine.Table{Name: "title"}
	kinds := engine.Column{Name: "kind_id"}
	for id := uint32(1); id <= movies; id++ {
		title.Keys = append(title.Keys, id)
		kinds.Vals = append(kinds.Vals, int64(rng.Intn(6))+1)
	}
	title.Cols = []engine.Column{kinds}

	// cast_info: ~40% of movies have 1..6 cast rows, role_id 1..11.
	castInfo := &engine.Table{Name: "cast_info"}
	roles := engine.Column{Name: "role_id"}
	for id := uint32(1); id <= movies; id++ {
		if rng.Intn(5) >= 2 {
			continue
		}
		for c, n := 0, 1+rng.Intn(6); c < n; c++ {
			castInfo.Keys = append(castInfo.Keys, id)
			roles.Vals = append(roles.Vals, int64(rng.Intn(11))+1)
		}
	}
	castInfo.Cols = []engine.Column{roles}

	// Offline: pre-build the CCF over cast_info(movie_id, role_id).
	ciFilter, err := ccf.New(ccf.Params{Variant: ccf.Chained, NumAttrs: 1, Capacity: castInfo.NumRows()})
	if err != nil {
		log.Fatal(err)
	}
	for row, k := range castInfo.Keys {
		if err := ciFilter.Insert(uint64(k), []uint64{uint64(roles.Vals[row])}); err != nil {
			log.Fatal(err)
		}
	}

	titlePred := []engine.Pred{{Col: 0, Op: engine.OpEq, Value: 1}}
	castPred := []engine.Pred{{Col: 0, Op: engine.OpEq, Value: 4}}

	// Plan A: no prefiltering — the hash table holds every kind-1 title.
	planA := &engine.HashJoin{BuildPreds: titlePred, ProbePreds: castPred}
	rowsA, statsA, err := planA.Run(title, castInfo)
	if err != nil {
		log.Fatal(err)
	}

	// Plan B: the CCF, queried with cast_info's predicate pushed down,
	// prefilters the build scan.
	pred := ccf.And(ccf.Eq(0, 4))
	planB := &engine.HashJoin{
		BuildPreds:  titlePred,
		ProbePreds:  castPred,
		BuildFilter: func(k uint32) bool { return ciFilter.Query(uint64(k), pred) },
	}
	rowsB, statsB, err := planB.Run(title, castInfo)
	if err != nil {
		log.Fatal(err)
	}

	if !engine.EqualJoinResults(rowsA, rowsB) {
		log.Fatal("prefiltered plan changed the join result — filter returned a false negative?!")
	}

	fmt.Println("title ⋈ cast_info ON movie_id, t.kind_id=1 AND ci.role_id=4")
	fmt.Printf("  join output (both plans):        %7d rows\n", statsA.Output)
	fmt.Printf("  build side without CCF:          %7d rows in hash table\n", statsA.BuildRowsIn)
	fmt.Printf("  build side with CCF prefilter:   %7d rows in hash table (%.1f%% of unfiltered)\n",
		statsB.BuildRowsIn, 100*float64(statsB.BuildRowsIn)/float64(statsA.BuildRowsIn))
	fmt.Printf("  pre-built CCF size:              %7.1f KiB\n", float64(ciFilter.SizeBits())/8/1024)

	// §3's planning consequence: with a memory budget, the reduction flips
	// a Grace hash join (spilling to disk) into a simple in-memory join.
	budget := int64(statsA.BuildRowsIn) * engine.BytesPerBuildRow / 2
	planBefore, partsBefore := engine.PlanBuild(statsA.BuildRowsIn, budget)
	planAfter, _ := engine.PlanBuild(statsB.BuildRowsIn, budget)
	fmt.Printf("\nwith a %.0f KiB build budget:\n", float64(budget)/1024)
	fmt.Printf("  without CCF: %v (%d partitions, %.0f KiB spilled)\n",
		planBefore, partsBefore, float64(engine.SpillBytes(planBefore, statsA.BuildRowsIn))/1024)
	fmt.Printf("  with CCF:    %v (%.0f KiB spilled)\n",
		planAfter, float64(engine.SpillBytes(planAfter, statsB.BuildRowsIn))/1024)
	fmt.Println("\nidentical output, much smaller build side — the §3 win.")
}
