// Multiset demonstrates the chaining technique (§6.2): a plain cuckoo
// filter collapses when keys repeat — it can store at most 2b copies of a
// key, and skewed duplicates stall its kick chains long before that — while
// the chained filter keeps accepting rows at a high load factor.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ccf"
)

func main() {
	const buckets = 1 << 12

	for _, dupes := range []int{1, 4, 8, 16, 32} {
		plainLoad, plainRows := fill(ccf.Plain, 4, buckets, dupes)
		chainLoad, chainRows := fill(ccf.Chained, 6, buckets, dupes)
		fmt.Printf("duplicates/key %2d:  plain load %.2f (%6d rows)   chained load %.2f (%6d rows)\n",
			dupes, plainLoad, plainRows, chainLoad, chainRows)
	}

	// The paper's worst case: Zipf-like skew, where a few keys carry
	// hundreds of duplicates. The plain filter dies almost immediately.
	fmt.Println("\nskewed stream (a few keys carry most duplicates):")
	for _, v := range []struct {
		name    string
		variant ccf.Variant
		b       int
	}{{"plain", ccf.Plain, 4}, {"chained", ccf.Chained, 6}} {
		f, err := ccf.New(ccf.Params{Variant: v.variant, BucketSize: v.b, Buckets: buckets, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		rows := 0
		for {
			key := uint64(rng.Intn(500))
			attr := uint64(rng.Intn(1 << 20))
			if err := f.Insert(key, []uint64{attr + 1<<20}); err != nil {
				break
			}
			rows++
			if rows > f.Capacity()*2 {
				break
			}
		}
		fmt.Printf("  %-8s stored %6d rows before first failure, load factor %.2f\n",
			v.name, rows, f.LoadFactor())
	}
}

// fill inserts keys with the given duplicate count (each duplicate has a
// distinct attribute) until the first failed insertion.
func fill(variant ccf.Variant, bucketSize int, buckets uint32, dupes int) (float64, int) {
	f, err := ccf.New(ccf.Params{
		Variant: variant, BucketSize: bucketSize, Buckets: buckets, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	rows := 0
	for key := uint64(0); ; key++ {
		for d := 0; d < dupes; d++ {
			if err := f.Insert(key, []uint64{uint64(d) + 1<<20}); err != nil {
				return f.LoadFactor(), rows
			}
			rows++
		}
	}
}
