// Rangequery demonstrates the two range-predicate encodings of §9.1 on the
// paper's production_year column: equal-width binning (a range becomes an
// in-list of bins) and dyadic interval expansion (each value is inserted
// once per level; a range is covered by O(log n) canonical intervals).
package main

import (
	"fmt"
	"log"

	"ccf"
)

func main() {
	// --- Binning (the paper's choice: 132 years → 16 bins). -------------
	binner, err := ccf.NewBinner(1888, 2019, 16)
	if err != nil {
		log.Fatal(err)
	}
	binned, err := ccf.New(ccf.Params{Variant: ccf.Chained, NumAttrs: 1, Capacity: 1 << 14})
	if err != nil {
		log.Fatal(err)
	}
	// Movies with years spread over the domain.
	years := map[uint64]uint64{}
	for id := uint64(1); id <= 5000; id++ {
		year := 1888 + (id*37)%132
		years[id] = year
		if err := binned.Insert(id, []uint64{binner.Bin(year)}); err != nil {
			log.Fatal(err)
		}
	}
	lo, hi := uint64(1995), uint64(2005)
	cond := binner.InRange(0, lo, hi)
	tp, fp := count(years, lo, hi, func(id uint64) bool {
		return binned.Query(id, ccf.And(cond))
	})
	fmt.Printf("binned range [%d,%d]: %d true matches found, %d false positives (bin spill)\n",
		lo, hi, tp, fp)
	fmt.Printf("  filter size: %.1f KiB\n", float64(binned.SizeBits())/8/1024)

	// --- Dyadic intervals (finer, costs η inserts per row). -------------
	dyadic, err := ccf.NewDyadic(1888, 8) // 8 levels cover 132 years at unit leaves
	if err != nil {
		log.Fatal(err)
	}
	dy, err := ccf.New(ccf.Params{Variant: ccf.Chained, NumAttrs: 1, AttrBits: 12, Capacity: 1 << 17})
	if err != nil {
		log.Fatal(err)
	}
	for id, year := range years {
		for _, iv := range dyadic.IntervalIDs(year) {
			if err := dy.Insert(id, []uint64{iv}); err != nil {
				log.Fatal(err)
			}
		}
	}
	cover := dyadic.CoverRange(lo, hi)
	dcond := ccf.In(0, cover...)
	tp, fp = count(years, lo, hi, func(id uint64) bool {
		return dy.Query(id, ccf.And(dcond))
	})
	fmt.Printf("dyadic range [%d,%d]: %d true matches found, %d false positives (%d cover intervals)\n",
		lo, hi, tp, fp, len(cover))
	fmt.Printf("  filter size: %.1f KiB (η = %d inserts per row)\n",
		float64(dy.SizeBits())/8/1024, 8)
}

// count runs the probe over all movies and tallies true/false positives;
// it panics on a false negative, which the filters guarantee cannot happen.
func count(years map[uint64]uint64, lo, hi uint64, probe func(uint64) bool) (tp, fp int) {
	for id, year := range years {
		in := year >= lo && year <= hi
		got := probe(id)
		switch {
		case in && got:
			tp++
		case in && !got:
			panic("false negative — impossible by construction")
		case !in && got:
			fp++
		}
	}
	return tp, fp
}
