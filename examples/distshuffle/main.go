// Distshuffle demonstrates the distributed-join setting the paper
// emphasizes (§2–3): in a shuffle join, every scanned tuple crosses the
// network unless a filter drops it first. Pre-built CCFs — shipped to the
// scanning workers because they serialize compactly — cut that traffic by
// the reduction factor, which is the paper's metric "for a distributed
// system ... [the] proportion of tuples ... sent over the network".
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ccf"
	"ccf/internal/distsim"
)

func main() {
	const (
		workers = 8
		movies  = 50000
		rowSize = 48 // bytes per shuffled tuple
	)
	rng := rand.New(rand.NewSource(3))

	// Dimension table (title): every movie with a kind_id; pre-build its CCF.
	titleFilter, err := ccf.New(ccf.Params{Variant: ccf.Chained, NumAttrs: 1, Capacity: movies})
	if err != nil {
		log.Fatal(err)
	}
	for id := uint64(1); id <= movies; id++ {
		if err := titleFilter.Insert(id, []uint64{uint64(rng.Intn(6)) + 1}); err != nil {
			log.Fatal(err)
		}
	}
	blob, err := titleFilter.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}

	// Fact table (cast_info): ~4 rows per movie for 60% of movies,
	// scattered across the workers that scanned them.
	var fact []distsim.Row
	var origin []int
	for id := uint32(1); id <= movies; id++ {
		if rng.Intn(5) < 2 {
			continue
		}
		for c := 0; c < 4; c++ {
			fact = append(fact, distsim.Row{Key: id, Bytes: rowSize})
			origin = append(origin, rng.Intn(workers))
		}
	}

	cluster, err := distsim.NewCluster(workers, 1)
	if err != nil {
		log.Fatal(err)
	}
	originFn := func(i int) int { return origin[i] }

	// Query predicate on the dimension: kind_id = 2. Push it to the fact
	// scan through the shipped CCF.
	pred := ccf.And(ccf.Eq(0, 2))
	ccfFilter := func(k uint32) bool { return titleFilter.Query(uint64(k), pred) }
	keyOnly := func(k uint32) bool { return titleFilter.QueryKey(uint64(k)) }

	noFilter := cluster.Shuffle(fact, originFn, nil)
	withKeyOnly := cluster.Shuffle(fact, originFn, keyOnly)
	withCCF := cluster.Shuffle(fact, originFn, ccfFilter)

	fmt.Printf("shuffling %d cast_info rows across %d workers (join on movie id, t.kind_id = 2)\n\n",
		len(fact), workers)
	fmt.Printf("  no filter:        %s\n", noFilter)
	fmt.Printf("  key-only filter:  %s\n", withKeyOnly)
	fmt.Printf("  CCF w/ predicate: %s\n\n", withCCF)
	fmt.Printf("CCF shipped to each worker: %.1f KiB serialized\n", float64(len(blob))/1024)
	fmt.Printf("network bytes: %.2f MB → %.2f MB (%.1f%% of unfiltered)\n",
		float64(noFilter.BytesOnWire)/1e6, float64(withCCF.BytesOnWire)/1e6,
		100*float64(withCCF.BytesOnWire)/float64(noFilter.BytesOnWire))
}
