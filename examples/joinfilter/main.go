// Joinfilter reproduces the paper's motivating scenario (§3): a star join
// of three tables on movie id, where pre-built conditional cuckoo filters
// push each table's predicates down to the other tables' scans.
//
//	SELECT ci.*, t.title, mc.note
//	FROM cast_info ci, title t, movie_companies mc
//	WHERE t.id = ci.movie_id AND t.id = mc.movie_id
//	  AND ci.role_id = 4 AND t.kind_id = 1 AND mc.company_type_id = 2
//
// A key-only filter on title is useless — title holds the universe of
// movie ids — but a CCF queried with kind_id = 1 sharply reduces the
// cast_info scan.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ccf"
)

type table struct {
	name string
	keys []uint64
	attr []uint64 // one predicate column per table in this demo
}

func main() {
	rng := rand.New(rand.NewSource(7))
	const movies = 20000

	// title: every movie id once; kind_id in 1..6, skewed.
	title := table{name: "title"}
	for id := uint64(1); id <= movies; id++ {
		title.keys = append(title.keys, id)
		title.attr = append(title.attr, uint64(rng.Intn(6))+1)
	}
	// cast_info: ~5 cast rows per movie for half the movies; role_id 1..11.
	castInfo := table{name: "cast_info"}
	for id := uint64(1); id <= movies; id += 2 {
		for c := 0; c < 5; c++ {
			castInfo.keys = append(castInfo.keys, id)
			castInfo.attr = append(castInfo.attr, uint64(rng.Intn(11))+1)
		}
	}
	// movie_companies: ~2 rows per movie for a third of movies; type 1..2.
	movieCompanies := table{name: "movie_companies"}
	for id := uint64(1); id <= movies; id += 3 {
		for c := 0; c < 2; c++ {
			movieCompanies.keys = append(movieCompanies.keys, id)
			movieCompanies.attr = append(movieCompanies.attr, uint64(rng.Intn(2))+1)
		}
	}

	// Pre-build one CCF per table (normally done offline and stored).
	filters := map[string]*ccf.Filter{}
	for _, t := range []table{title, castInfo, movieCompanies} {
		f, err := ccf.New(ccf.Params{Variant: ccf.Chained, NumAttrs: 1, Capacity: len(t.keys)})
		if err != nil {
			log.Fatal(err)
		}
		for i, k := range t.keys {
			if err := f.Insert(k, []uint64{t.attr[i]}); err != nil {
				log.Fatal(err)
			}
		}
		filters[t.name] = f
	}

	// Scan cast_info with its own predicate role_id = 4, then apply the
	// other tables' CCFs with their predicates pushed down.
	const (
		rolePred = 4 // ci.role_id = 4
		kindPred = 1 // t.kind_id = 1
		typePred = 2 // mc.company_type_id = 2
	)
	titleF := filters["title"]
	mcF := filters["movie_companies"]

	var afterPred, afterKeyOnly, afterCCF, exact int
	// Exact key sets for ground truth.
	titleMatch := map[uint64]bool{}
	for i, k := range title.keys {
		if title.attr[i] == kindPred {
			titleMatch[k] = true
		}
	}
	mcMatch := map[uint64]bool{}
	for i, k := range movieCompanies.keys {
		if movieCompanies.attr[i] == typePred {
			mcMatch[k] = true
		}
	}

	for i, k := range castInfo.keys {
		if castInfo.attr[i] != rolePred {
			continue
		}
		afterPred++
		// State of the art: key-only membership (predicates ignored).
		if titleF.QueryKey(k) && mcF.QueryKey(k) {
			afterKeyOnly++
		}
		// CCF: predicates pushed down to the other tables.
		if titleF.Query(k, ccf.And(ccf.Eq(0, kindPred))) &&
			mcF.Query(k, ccf.And(ccf.Eq(0, typePred))) {
			afterCCF++
		}
		if titleMatch[k] && mcMatch[k] {
			exact++
		}
	}

	fmt.Println("cast_info scan output (rows fed to the join):")
	fmt.Printf("  after local predicate only:        %6d\n", afterPred)
	fmt.Printf("  + key-only filters (existing art): %6d  (RF %.3f)\n",
		afterKeyOnly, rf(afterKeyOnly, afterPred))
	fmt.Printf("  + conditional cuckoo filters:      %6d  (RF %.3f)\n",
		afterCCF, rf(afterCCF, afterPred))
	fmt.Printf("  exact semijoin (lower bound):      %6d  (RF %.3f)\n",
		exact, rf(exact, afterPred))
	fmt.Printf("\nfalse positives from CCFs: %d of %d candidates\n",
		afterCCF-exact, afterPred-exact)
	var bits int64
	for _, f := range filters {
		bits += f.SizeBits()
	}
	fmt.Printf("total pre-built filter size: %.1f KiB\n", float64(bits)/8/1024)
}

func rf(m, base int) float64 {
	if base == 0 {
		return 1
	}
	return float64(m) / float64(base)
}
