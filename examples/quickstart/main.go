// Quickstart: build a conditional cuckoo filter over (key, attributes)
// rows, query it with predicates, and serialize it for storage.
package main

import (
	"fmt"
	"log"

	"ccf"
)

func main() {
	// A filter over rows of (movie id, role id, kind id): two attribute
	// columns, chained duplicate handling (the paper's default).
	f, err := ccf.New(ccf.Params{
		Variant:  ccf.Chained,
		NumAttrs: 2,
		Capacity: 64, // size for the expected number of rows
	})
	if err != nil {
		log.Fatal(err)
	}

	// Insert rows: movies have several cast entries with different roles.
	type row struct{ movie, role, kind uint64 }
	rows := []row{
		{101, 1, 1}, {101, 4, 1}, {101, 9, 1},
		{202, 4, 7}, {202, 2, 7},
		{303, 1, 1},
	}
	for _, r := range rows {
		if err := f.Insert(r.movie, []uint64{r.role, r.kind}); err != nil {
			log.Fatal(err)
		}
	}

	// Queries: no false negatives, few false positives.
	fmt.Println("movie 101 with role 4:          ", f.Query(101, ccf.And(ccf.Eq(0, 4))))
	fmt.Println("movie 101 with role 7:          ", f.Query(101, ccf.And(ccf.Eq(0, 7))))
	fmt.Println("movie 202 with role 4 and kind 1:", f.Query(202, ccf.And(ccf.Eq(0, 4), ccf.Eq(1, 1))))
	fmt.Println("movie 202 with role 4 and kind 7:", f.Query(202, ccf.And(ccf.Eq(0, 4), ccf.Eq(1, 7))))
	fmt.Println("movie 999 (never inserted):     ", f.QueryKey(999))
	fmt.Println("movie 303, role in {1,2,3}:     ", f.Query(303, ccf.And(ccf.In(0, 1, 2, 3))))

	// Pre-built filters serialize for storage and shipping.
	blob, err := f.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	var g ccf.Filter
	if err := g.UnmarshalBinary(blob); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized %d bytes; decoded filter holds %d rows at load %.2f\n",
		len(blob), g.Rows(), g.LoadFactor())
	fmt.Printf("packed sketch size: %d bits (%.1f bits/row)\n",
		f.SizeBits(), float64(f.SizeBits())/float64(f.Rows()))
}
