// Benchmarks for the serving-path batch APIs: sharded QueryBatch and
// InsertBatch versus the single-lock SyncFilter baseline. All variants
// report a comparable "keys/s" metric so the speedup from per-shard
// locking and batch grouping is visible directly; cmd/ccfd's bench mode
// emits the same comparison as JSON for trend tracking.
package ccf_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"ccf"
	"ccf/internal/core"
	"ccf/internal/shard"
)

const (
	benchRows  = 1 << 16
	benchBatch = 1024
)

func benchKeys() ([]uint64, [][]uint64) {
	keys := make([]uint64, benchRows)
	attrs := make([][]uint64, benchRows)
	for i := range keys {
		keys[i] = uint64(i)*2654435761 + 99
		attrs[i] = []uint64{uint64(i % 11)}
	}
	return keys, attrs
}

// BenchmarkQueryThroughput compares concurrent read throughput: point
// queries through SyncFilter's global RWMutex versus QueryBatch across
// 1, 4 and 16 shards.
func BenchmarkQueryThroughput(b *testing.B) {
	keys, attrs := benchKeys()
	pred := ccf.And(ccf.Eq(0, 3))

	b.Run("sync", func(b *testing.B) {
		sf, err := ccf.NewSync(ccf.Params{NumAttrs: 1, Capacity: benchRows * 2, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		for i := range keys {
			if err := sf.Insert(keys[i], attrs[i]); err != nil {
				b.Fatal(err)
			}
		}
		var done atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				sf.Query(keys[i%benchRows], pred)
				i++
			}
			done.Add(int64(i))
		})
		b.ReportMetric(float64(done.Load())/b.Elapsed().Seconds(), "keys/s")
	})

	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sharded/%d", shards), func(b *testing.B) {
			s, err := shard.New(shard.Options{
				Shards: shards,
				Params: core.Params{NumAttrs: 1, Capacity: benchRows * 2, Seed: 5},
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, err := range s.InsertBatch(keys, attrs) {
				if err != nil {
					b.Fatal(err)
				}
			}
			var done atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				off := 0
				for pb.Next() {
					lo := off % (benchRows - benchBatch)
					s.QueryBatch(keys[lo:lo+benchBatch], pred)
					off += benchBatch
					done.Add(benchBatch)
				}
			})
			b.ReportMetric(float64(done.Load())/b.Elapsed().Seconds(), "keys/s")
		})
	}
}

// BenchmarkMixedThroughput measures a 90/10 read/write mix, where the
// single global lock hurts most: every SyncFilter insert stalls all
// readers, while a sharded insert blocks only 1/N of the keyspace.
func BenchmarkMixedThroughput(b *testing.B) {
	keys, attrs := benchKeys()
	pred := ccf.And(ccf.Eq(0, 3))

	b.Run("sync", func(b *testing.B) {
		sf, err := ccf.NewSync(ccf.Params{NumAttrs: 1, Capacity: benchRows * 4, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		for i := range keys {
			sf.Insert(keys[i], attrs[i])
		}
		var done atomic.Int64
		var wkey atomic.Uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if i%10 == 9 {
					k := wkey.Add(1)
					sf.Insert(k+1e12, []uint64{k % 11})
				} else {
					sf.Query(keys[i%benchRows], pred)
				}
				i++
			}
			done.Add(int64(i))
		})
		b.ReportMetric(float64(done.Load())/b.Elapsed().Seconds(), "keys/s")
	})

	for _, shards := range []int{4, 16} {
		b.Run(fmt.Sprintf("sharded/%d", shards), func(b *testing.B) {
			s, err := shard.New(shard.Options{
				Shards: shards,
				Params: core.Params{NumAttrs: 1, Capacity: benchRows * 4, Seed: 5},
			})
			if err != nil {
				b.Fatal(err)
			}
			s.InsertBatch(keys, attrs)
			var done atomic.Int64
			var wkey atomic.Uint64
			wbatchAttrs := make([][]uint64, benchBatch/10)
			for i := range wbatchAttrs {
				wbatchAttrs[i] = []uint64{uint64(i % 11)}
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				off := 0
				for pb.Next() {
					if off%(10*benchBatch) >= 9*benchBatch {
						wkeys := make([]uint64, len(wbatchAttrs))
						base := wkey.Add(uint64(len(wkeys)))
						for i := range wkeys {
							wkeys[i] = 1e12 + base + uint64(i)
						}
						s.InsertBatch(wkeys, wbatchAttrs)
						done.Add(int64(len(wkeys)))
					} else {
						lo := off % (benchRows - benchBatch)
						s.QueryBatch(keys[lo:lo+benchBatch], pred)
						done.Add(benchBatch)
					}
					off += benchBatch
				}
			})
			b.ReportMetric(float64(done.Load())/b.Elapsed().Seconds(), "keys/s")
		})
	}
}

// BenchmarkInsertBatch measures grouped batch insertion across shard
// counts.
func BenchmarkInsertBatch(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			keys, attrs := benchKeys()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := shard.New(shard.Options{
					Shards: shards,
					Params: core.Params{NumAttrs: 1, Capacity: benchRows * 2, Seed: 5},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for lo := 0; lo+benchBatch <= benchRows; lo += benchBatch {
					s.InsertBatch(keys[lo:lo+benchBatch], attrs[lo:lo+benchBatch])
				}
			}
			b.ReportMetric(float64(benchRows), "keys/op")
		})
	}
}
